package commsim

import (
	"math"
	"testing"

	"qla/internal/pauliframe"
)

// TestChainBatchBitExactScalar: every batch lane replays the scalar
// backend's per-trial noise RNG stream and the protocol's classical
// quantities are deterministic in the ideal circuit, so the two
// backends must agree BIT-EXACTLY at the same seed — same basis-split
// error counts and the same RawPairsMean, not merely statistical
// compatibility. Trial counts straddle block boundaries (short final
// blocks, odd basis splits).
func TestChainBatchBitExactScalar(t *testing.T) {
	for _, cfg := range []ChainConfig{
		{Links: 2, LinkEps: 0.06, PurifyRounds: 1, SwapEps: 0.01, Trials: 320, Seed: 9},
		{Links: 1, LinkEps: 0.12, PurifyRounds: 2, Trials: 200, Seed: 4},
		{Links: 4, LinkEps: 0.05, PurifyRounds: 0, SwapEps: 0.02, Trials: 257, Seed: 12},
		{Links: 3, LinkEps: 0.09, PurifyRounds: 1, SwapEps: 0.0, Trials: 63, Seed: 31},
	} {
		scalar := cfg
		scalar.Backend = BackendScalar
		want, err := RunChain(scalar)
		if err != nil {
			t.Fatal(err)
		}
		batch := cfg
		batch.Backend = BackendBatch
		got, err := RunChain(batch)
		if err != nil {
			t.Fatal(err)
		}
		if got.ZBasisErrors != want.ZBasisErrors || got.XBasisErrors != want.XBasisErrors {
			t.Errorf("%+v: batch errors %d/%d, scalar %d/%d", cfg,
				got.ZBasisErrors, got.XBasisErrors, want.ZBasisErrors, want.XBasisErrors)
		}
		if got.ZTrials != want.ZTrials || got.XTrials != want.XTrials {
			t.Errorf("%+v: basis split %d/%d vs %d/%d", cfg,
				got.ZTrials, got.XTrials, want.ZTrials, want.XTrials)
		}
		if got.RawPairsMean != want.RawPairsMean {
			t.Errorf("%+v: batch RawPairsMean %v, scalar %v", cfg,
				got.RawPairsMean, want.RawPairsMean)
		}
	}
}

// TestChainBatchForcedFaultLane: a parity disagreement forced into
// exactly one lane must make exactly that lane re-run the purification
// attempt — it alone consumes extra raw pairs, every other lane's
// count matches a clean run, and (with zero physical noise) no lane
// errs.
func TestChainBatchForcedFaultLane(t *testing.T) {
	cfg := ChainConfig{Links: 1, PurifyRounds: 2, Trials: 64, Seed: 7}
	const faultLane = 13

	clean := newBatchChain(cfg)
	clean.reset(0, pauliframe.Lanes)
	if _, err := clean.run(^uint64(0)); err != nil {
		t.Fatal(err)
	}

	faulty := newBatchChain(cfg)
	faulty.reset(0, pauliframe.Lanes)
	fired := false
	faulty.forceDisagree = func(k, attempt int) uint64 {
		// One-shot: the level-2 build visits a k=1 junction for both
		// the kept pair and the sacrificial pair; fault only the first.
		if k == 1 && attempt == 0 && !fired {
			fired = true
			return 1 << faultLane
		}
		return 0
	}
	errMask, err := faulty.run(^uint64(0))
	if err != nil {
		t.Fatal(err)
	}
	if errMask != 0 {
		t.Fatalf("noise-free retry produced errors: %#x", errMask)
	}
	for l := 0; l < pauliframe.Lanes; l++ {
		want := clean.raw[l]
		if l == faultLane {
			// One retried level-1 attempt rebuilds both level-0 pairs.
			want += 2
		}
		if faulty.raw[l] != want {
			t.Errorf("lane %d: raw pairs %d, want %d", l, faulty.raw[l], want)
		}
	}
}

// TestChainBatchForcedFaultRetryIsolation: the forced lane's extra
// attempts run under a mask that excludes every converged lane, so a
// second forced disagreement at the *retried* attempt must charge the
// fault lane again and nobody else.
func TestChainBatchForcedFaultRetryIsolation(t *testing.T) {
	cfg := ChainConfig{Links: 2, PurifyRounds: 1, Trials: 64, Seed: 3}
	const faultLane = 60

	clean := newBatchChain(cfg)
	clean.reset(0, pauliframe.Lanes)
	if _, err := clean.run(^uint64(0)); err != nil {
		t.Fatal(err)
	}

	faulty := newBatchChain(cfg)
	faulty.reset(0, pauliframe.Lanes)
	faulty.forceDisagree = func(k, attempt int) uint64 {
		if k == 1 && attempt <= 1 {
			return 1 << faultLane
		}
		return 0
	}
	if _, err := faulty.run(^uint64(0)); err != nil {
		t.Fatal(err)
	}
	for l := 0; l < pauliframe.Lanes; l++ {
		want := clean.raw[l]
		if l == faultLane {
			// Both links' junctions retry twice: 2 links × 2 retries ×
			// 2 raw pairs per attempt.
			want += 8
		}
		if faulty.raw[l] != want {
			t.Errorf("lane %d: raw pairs %d, want %d", l, faulty.raw[l], want)
		}
	}
}

// TestChainBatchParallelMatchesSerial: 64-trial blocks are seeded by
// their global index and integer-summed, so the batch backend is
// bit-identical at any worker-pool width.
func TestChainBatchParallelMatchesSerial(t *testing.T) {
	base := ChainConfig{
		Links: 3, LinkEps: 0.07, PurifyRounds: 1, SwapEps: 0.01,
		Trials: 1200, Seed: 29, Backend: BackendBatch,
	}
	serial := base
	serial.Parallelism = 1
	want, err := RunChain(serial)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 5, 16} {
		cfg := base
		cfg.Parallelism = workers
		got, err := RunChain(cfg)
		if err != nil {
			t.Fatal(err)
		}
		got.Config, want.Config = ChainConfig{}, ChainConfig{}
		if got != want {
			t.Fatalf("parallelism %d: %+v != serial %+v", workers, got, want)
		}
	}
}

// TestChainBackendStatisticalAgreement: belt and suspenders on top of
// the bit-exactness test — at *different* seeds the two backends must
// still estimate the same error rate (two-proportion z-test; fixed
// seeds make the 5σ bound deterministic, not flaky).
func TestChainBackendStatisticalAgreement(t *testing.T) {
	const trials = 4000
	base := ChainConfig{Links: 2, LinkEps: 0.08, PurifyRounds: 1, SwapEps: 0.01, Trials: trials}
	scalar := base
	scalar.Backend = BackendScalar
	scalar.Seed = 101
	sp, err := RunChain(scalar)
	if err != nil {
		t.Fatal(err)
	}
	batch := base
	batch.Backend = BackendBatch
	batch.Seed = 202
	bp, err := RunChain(batch)
	if err != nil {
		t.Fatal(err)
	}
	k1 := sp.ZBasisErrors + sp.XBasisErrors
	k2 := bp.ZBasisErrors + bp.XBasisErrors
	if k1 == 0 || k2 == 0 {
		t.Fatalf("operating point produced no errors (scalar %d, batch %d); test has no power", k1, k2)
	}
	p1 := float64(k1) / trials
	p2 := float64(k2) / trials
	pool := float64(k1+k2) / (2 * trials)
	se := math.Sqrt(pool * (1 - pool) * (2.0 / trials))
	if z := math.Abs(p1-p2) / se; z > 5 {
		t.Errorf("error rates disagree: scalar %.4f, batch %.4f (z=%.2f)", p1, p2, z)
	}
	if ratio := sp.RawPairsMean / bp.RawPairsMean; ratio < 0.9 || ratio > 1.1 {
		t.Errorf("raw-pair means disagree: scalar %.3f, batch %.3f", sp.RawPairsMean, bp.RawPairsMean)
	}
}

// TestChainBackendValidation: unknown backend names are rejected with
// the catalogued error text.
func TestChainBackendValidation(t *testing.T) {
	cfg := ChainConfig{Links: 1, Trials: 10, Backend: "warp"}
	_, err := RunChain(cfg)
	if err == nil {
		t.Fatal("unknown backend accepted")
	}
	const want = `commsim: unknown backend "warp" (want "batch" or "scalar")`
	if err.Error() != want {
		t.Fatalf("error %q, want %q", err, want)
	}
}
