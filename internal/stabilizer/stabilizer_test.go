package stabilizer

import (
	"math/rand/v2"
	"testing"

	"qla/internal/pauli"
)

func TestInitialState(t *testing.T) {
	s := New(3)
	for q := 0; q < 3; q++ {
		if got := s.Measure(q); got != 0 {
			t.Errorf("initial Measure(%d) = %d, want 0", q, got)
		}
	}
	if err := s.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestXFlipsMeasurement(t *testing.T) {
	s := New(2)
	s.X(1)
	if got := s.Measure(1); got != 1 {
		t.Errorf("Measure after X = %d, want 1", got)
	}
	if got := s.Measure(0); got != 0 {
		t.Errorf("Measure(0) = %d, want 0", got)
	}
}

func TestHadamardRandomness(t *testing.T) {
	ones := 0
	const trials = 400
	for i := 0; i < trials; i++ {
		s := NewSeeded(1, uint64(i)+1)
		s.H(0)
		ones += s.Measure(0)
	}
	if ones < trials/4 || ones > 3*trials/4 {
		t.Errorf("H|0> measurement ones = %d of %d; expected balanced", ones, trials)
	}
}

func TestMeasurementRepeatable(t *testing.T) {
	s := New(1)
	s.H(0)
	first := s.Measure(0)
	for i := 0; i < 5; i++ {
		if got := s.Measure(0); got != first {
			t.Fatalf("repeated measurement changed: %d then %d", first, got)
		}
	}
}

func TestBellPairCorrelations(t *testing.T) {
	for seed := uint64(1); seed <= 50; seed++ {
		s := NewSeeded(2, seed)
		s.H(0)
		s.CNOT(0, 1)
		a, b := s.Measure(0), s.Measure(1)
		if a != b {
			t.Fatalf("Bell pair uncorrelated: %d %d (seed %d)", a, b, seed)
		}
	}
}

func TestGHZ(t *testing.T) {
	for seed := uint64(1); seed <= 30; seed++ {
		s := NewSeeded(5, seed)
		s.H(0)
		for q := 1; q < 5; q++ {
			s.CNOT(0, q)
		}
		// XXXXX and ZZIII etc. are stabilizers.
		if e := s.Expectation(pauli.MustParse("+XXXXX")); e != 1 {
			t.Fatalf("<XXXXX> = %d, want +1", e)
		}
		if e := s.Expectation(pauli.MustParse("+ZZIII")); e != 1 {
			t.Fatalf("<ZZIII> = %d, want +1", e)
		}
		if e := s.Expectation(pauli.MustParse("+ZIIII")); e != 0 {
			t.Fatalf("<ZIIII> = %d, want 0 (random)", e)
		}
		first := s.Measure(0)
		for q := 1; q < 5; q++ {
			if got := s.Measure(q); got != first {
				t.Fatalf("GHZ uncorrelated at qubit %d", q)
			}
		}
	}
}

func TestGateIdentities(t *testing.T) {
	// Build a random state, then check H²=I, S⁴=I, CNOT²=I, SWAP²=I, CZ²=I.
	build := func() *State {
		s := NewSeeded(4, 99)
		s.H(0)
		s.CNOT(0, 1)
		s.S(1)
		s.H(2)
		s.CNOT(2, 3)
		s.S(3)
		s.CNOT(1, 2)
		return s
	}
	ref := build()

	s := build()
	s.H(1)
	s.H(1)
	if !s.SameState(ref) {
		t.Error("H² != I")
	}

	s = build()
	for i := 0; i < 4; i++ {
		s.S(2)
	}
	if !s.SameState(ref) {
		t.Error("S⁴ != I")
	}

	s = build()
	s.S(0)
	s.Sdg(0)
	if !s.SameState(ref) {
		t.Error("S·Sdg != I")
	}

	s = build()
	s.CNOT(1, 3)
	s.CNOT(1, 3)
	if !s.SameState(ref) {
		t.Error("CNOT² != I")
	}

	s = build()
	s.CZ(0, 2)
	s.CZ(0, 2)
	if !s.SameState(ref) {
		t.Error("CZ² != I")
	}

	s = build()
	s.SWAP(0, 3)
	s.SWAP(0, 3)
	if !s.SameState(ref) {
		t.Error("SWAP² != I")
	}

	// X = H Z H ; Z = S S ; Y = i X Z (phases invisible to stabilizer states)
	s = build()
	s.X(2)
	s2 := build()
	s2.H(2)
	s2.Z(2)
	s2.H(2)
	if !s.SameState(s2) {
		t.Error("X != HZH")
	}
	s = build()
	s.Z(1)
	s2 = build()
	s2.S(1)
	s2.S(1)
	if !s.SameState(s2) {
		t.Error("Z != S²")
	}
}

func TestSConjugation(t *testing.T) {
	// S X S† = Y: prepare |+>, apply S, state should be +1 eigenstate of Y.
	s := New(1)
	s.H(0)
	if e := s.Expectation(pauli.MustParse("+X")); e != 1 {
		t.Fatalf("<X> after H = %d", e)
	}
	s.S(0)
	if e := s.Expectation(pauli.MustParse("+Y")); e != 1 {
		t.Fatalf("<Y> after S·H = %d, want +1", e)
	}
	s.Sdg(0)
	if e := s.Expectation(pauli.MustParse("+X")); e != 1 {
		t.Fatalf("<X> after Sdg·S·H = %d, want +1", e)
	}
}

func TestSwapMovesState(t *testing.T) {
	s := New(3)
	s.X(0)
	s.SWAP(0, 2)
	if got := s.Measure(0); got != 0 {
		t.Errorf("qubit 0 after swap = %d, want 0", got)
	}
	if got := s.Measure(2); got != 1 {
		t.Errorf("qubit 2 after swap = %d, want 1", got)
	}
}

func TestMeasureForced(t *testing.T) {
	s := New(2)
	s.H(0)
	out, random, ok := s.MeasureForced(0, 1)
	if !random || !ok || out != 1 {
		t.Fatalf("MeasureForced on random outcome: out=%d random=%v ok=%v", out, random, ok)
	}
	if got := s.Measure(0); got != 1 {
		t.Error("forced outcome did not persist")
	}
	// Forcing a determinate outcome to the wrong value must fail.
	out, random, ok = s.MeasureForced(0, 0)
	if random || ok || out != 1 {
		t.Fatalf("forcing determinate: out=%d random=%v ok=%v", out, random, ok)
	}
}

func TestMeasureReset(t *testing.T) {
	s := New(1)
	s.H(0)
	_ = s.MeasureReset(0)
	if got := s.Measure(0); got != 0 {
		t.Errorf("after MeasureReset, Measure = %d, want 0", got)
	}
}

func TestTeleportationIdentity(t *testing.T) {
	// Teleport an arbitrary stabilizer state of qubit 0 to qubit 2 using a
	// Bell pair on (1,2) and classical corrections; verify the output
	// state matches a reference preparation for several input states.
	preps := []func(s *State){
		func(s *State) {},                   // |0>
		func(s *State) { s.X(0) },           // |1>
		func(s *State) { s.H(0) },           // |+>
		func(s *State) { s.H(0); s.Z(0) },   // |->
		func(s *State) { s.H(0); s.S(0) },   // |+i>
		func(s *State) { s.H(0); s.Sdg(0) }, // |-i>
	}
	checks := []pauli.String{
		pauli.MustParse("+Z"), pauli.MustParse("-Z"),
		pauli.MustParse("+X"), pauli.MustParse("-X"),
		pauli.MustParse("+Y"), pauli.MustParse("-Y"),
	}
	for pi, prep := range preps {
		for seed := uint64(0); seed < 20; seed++ {
			s := NewSeeded(3, seed*7+1)
			prep(s)
			// Bell pair between 1 (Alice) and 2 (Bob).
			s.H(1)
			s.CNOT(1, 2)
			// Bell measurement on (0,1).
			s.CNOT(0, 1)
			s.H(0)
			m0 := s.Measure(0)
			m1 := s.Measure(1)
			if m1 == 1 {
				s.X(2)
			}
			if m0 == 1 {
				s.Z(2)
			}
			// Qubit 2 should now be in the prepared state.
			got := s.Expectation(checks[pi].Embed(3, []int{2}))
			if got != 1 {
				t.Fatalf("teleport prep %d seed %d: expectation %d, want +1", pi, seed, got)
			}
		}
	}
}

func TestExpectationSigns(t *testing.T) {
	s := New(2)
	s.X(0) // |10>
	if e := s.Expectation(pauli.MustParse("+ZI")); e != -1 {
		t.Errorf("<ZI> on |10> = %d, want -1", e)
	}
	if e := s.Expectation(pauli.MustParse("-ZI")); e != 1 {
		t.Errorf("<-ZI> on |10> = %d, want +1", e)
	}
	if e := s.Expectation(pauli.MustParse("+ZZ")); e != -1 {
		t.Errorf("<ZZ> on |10> = %d, want -1", e)
	}
	if e := s.Expectation(pauli.MustParse("+XI")); e != 0 {
		t.Errorf("<XI> on |10> = %d, want 0", e)
	}
	// Y eigenstate: S·H|0> = |+i>, <Y> = +1 (and -Y gives -1).
	s = New(1)
	s.H(0)
	s.S(0)
	if e := s.Expectation(pauli.MustParse("+Y")); e != 1 {
		t.Errorf("<Y> on |+i> = %d", e)
	}
	if e := s.Expectation(pauli.MustParse("-Y")); e != -1 {
		t.Errorf("<-Y> on |+i> = %d", e)
	}
}

func TestMeasurePauliJoint(t *testing.T) {
	// Measuring XX then ZZ on |00> prepares a Bell state (up to sign).
	for seed := uint64(1); seed < 40; seed++ {
		s := NewSeeded(2, seed)
		mxx := s.MeasurePauli(pauli.MustParse("+XX"))
		// After measuring XX, ZZ should still be +1 (it commutes and
		// stabilized |00>).
		if e := s.Expectation(pauli.MustParse("+ZZ")); e != 1 {
			t.Fatalf("<ZZ> after XX measurement = %d", e)
		}
		if e := s.Expectation(pauli.MustParse("+XX")); e != 1-2*mxx {
			t.Fatalf("<XX> = %d inconsistent with outcome %d", e, mxx)
		}
		// Repeat measurement must agree.
		if again := s.MeasurePauli(pauli.MustParse("+XX")); again != mxx {
			t.Fatalf("XX remeasurement changed: %d -> %d", mxx, again)
		}
	}
}

func TestMeasurePauliDeterminate(t *testing.T) {
	s := New(3)
	s.X(1)
	if m := s.MeasurePauli(pauli.MustParse("+IZI")); m != 1 {
		t.Errorf("measuring IZI on |010> = %d, want 1", m)
	}
	if m := s.MeasurePauli(pauli.MustParse("+ZII")); m != 0 {
		t.Errorf("measuring ZII on |010> = %d, want 0", m)
	}
	if m := s.MeasurePauli(pauli.MustParse("+ZZI")); m != 1 {
		t.Errorf("measuring ZZI on |010> = %d, want 1", m)
	}
}

func TestApplyPauli(t *testing.T) {
	s := New(3)
	s.ApplyPauli(pauli.MustParse("+XIX"))
	if got := s.Measure(0); got != 1 {
		t.Error("X not applied to qubit 0")
	}
	if got := s.Measure(1); got != 0 {
		t.Error("unexpected flip on qubit 1")
	}
	if got := s.Measure(2); got != 1 {
		t.Error("X not applied to qubit 2")
	}
}

func TestInvariantsUnderRandomCircuits(t *testing.T) {
	r := rand.New(rand.NewPCG(11, 13))
	for trial := 0; trial < 20; trial++ {
		n := 2 + r.IntN(10)
		s := NewSeeded(n, uint64(trial)+100)
		for g := 0; g < 200; g++ {
			switch r.IntN(6) {
			case 0:
				s.H(r.IntN(n))
			case 1:
				s.S(r.IntN(n))
			case 2:
				a, b := r.IntN(n), r.IntN(n)
				if a != b {
					s.CNOT(a, b)
				}
			case 3:
				s.X(r.IntN(n))
			case 4:
				s.Measure(r.IntN(n))
			case 5:
				s.Z(r.IntN(n))
			}
		}
		if err := s.CheckInvariants(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestSameStateDetectsDifference(t *testing.T) {
	a := New(2)
	b := New(2)
	if !a.SameState(b) {
		t.Error("identical fresh states reported different")
	}
	b.X(0)
	if a.SameState(b) {
		t.Error("different states reported same")
	}
	// Same state prepared via different circuits.
	c := New(2)
	c.H(0)
	c.CNOT(0, 1)
	d := New(2)
	d.H(1)
	d.CNOT(1, 0)
	if !c.SameState(d) {
		t.Error("Bell states prepared differently reported different")
	}
}

func TestLargeState(t *testing.T) {
	// Exercise multi-word rows: 200-qubit GHZ.
	n := 200
	s := New(n)
	s.H(0)
	for q := 1; q < n; q++ {
		s.CNOT(q-1, q)
	}
	first := s.Measure(0)
	for q := 1; q < n; q++ {
		if got := s.Measure(q); got != first {
			t.Fatalf("GHZ-%d uncorrelated at %d", n, q)
		}
	}
}

func TestStabilizerAccessors(t *testing.T) {
	s := New(2)
	s.H(0)
	s.CNOT(0, 1)
	// Stabilizer group of the Bell state is {XX, ZZ} (as generators).
	for i := 0; i < 2; i++ {
		g := s.Stabilizer(i)
		if e := s.Expectation(g); e != 1 {
			t.Errorf("own stabilizer %d (%s) has expectation %d", i, g, e)
		}
	}
	if err := s.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// TestCloneRNGIndependent: sibling clones of the same state must draw
// independent measurement randomness. (A fixed clone seed once made
// every clone produce the identical "random" outcome stream.)
func TestCloneRNGIndependent(t *testing.T) {
	s := New(1)
	s.H(0)
	outcomes := map[int]int{}
	for i := 0; i < 64; i++ {
		outcomes[s.Clone().Measure(0)]++
	}
	if outcomes[0] == 0 || outcomes[1] == 0 {
		t.Fatalf("64 sibling clones produced only outcome distribution %v; clone RNGs are correlated", outcomes)
	}
	// Clones must still be deep copies: measuring one leaves another (and
	// the original) untouched.
	a, b := s.Clone(), s.Clone()
	a.Measure(0)
	if !b.SameState(s.Clone()) {
		t.Error("measuring one clone disturbed a sibling")
	}
}

func BenchmarkCNOTChain100(b *testing.B) {
	s := New(100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.CNOT(i%99, (i%99)+1)
	}
}

func BenchmarkMeasure100(b *testing.B) {
	s := New(100)
	for q := 0; q < 100; q++ {
		s.H(q)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := i % 100
		s.H(q)
		s.Measure(q)
	}
}
