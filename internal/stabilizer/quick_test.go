package stabilizer

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"qla/internal/pauli"
)

// applyProgram runs a deterministic pseudo-random Clifford program derived
// from seed on the state and returns the gate list for replay/inversion.
type cliffordGate struct {
	kind int // 0 H, 1 S, 2 CNOT, 3 CZ, 4 SWAP
	a, b int
}

func randomProgram(seed uint64, n, gates int) []cliffordGate {
	r := rand.New(rand.NewPCG(seed, seed^0xfeed))
	prog := make([]cliffordGate, gates)
	for i := range prog {
		g := cliffordGate{kind: r.IntN(5), a: r.IntN(n)}
		if n < 2 {
			// Only single-qubit gates exist on a 1-qubit register.
			g.kind = r.IntN(2)
		} else {
			g.b = r.IntN(n)
			for g.b == g.a {
				g.b = r.IntN(n)
			}
		}
		prog[i] = g
	}
	return prog
}

func (g cliffordGate) apply(s *State) {
	switch g.kind {
	case 0:
		s.H(g.a)
	case 1:
		s.S(g.a)
	case 2:
		s.CNOT(g.a, g.b)
	case 3:
		s.CZ(g.a, g.b)
	case 4:
		s.SWAP(g.a, g.b)
	}
}

func (g cliffordGate) invert(s *State) {
	switch g.kind {
	case 0:
		s.H(g.a)
	case 1:
		s.Sdg(g.a)
	case 2:
		s.CNOT(g.a, g.b)
	case 3:
		s.CZ(g.a, g.b)
	case 4:
		s.SWAP(g.a, g.b)
	}
}

// Property: every Clifford program preserves the tableau invariants.
func TestQuickInvariantsPreserved(t *testing.T) {
	f := func(seed uint64, nRaw, gRaw uint8) bool {
		n := 2 + int(nRaw%10)
		gates := 1 + int(gRaw)%120
		s := NewSeeded(n, seed)
		for _, g := range randomProgram(seed, n, gates) {
			g.apply(s)
		}
		return s.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: running a program and then its inverse restores |0…0⟩.
func TestQuickProgramInversion(t *testing.T) {
	f := func(seed uint64, nRaw, gRaw uint8) bool {
		n := 2 + int(nRaw%10)
		gates := 1 + int(gRaw)%100
		s := NewSeeded(n, seed)
		prog := randomProgram(seed, n, gates)
		for _, g := range prog {
			g.apply(s)
		}
		for i := len(prog) - 1; i >= 0; i-- {
			prog[i].invert(s)
		}
		return s.SameState(New(n))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: conjugation preserves commutation — for random Paulis P, Q and
// a random Clifford C, [P,Q] = 0 iff [CPC†, CQC†] = 0. We test it through
// expectation values: applying the program to two states differing by P
// keeps their difference a Pauli (frame equivalence at the tableau level).
func TestQuickMeasurementIdempotent(t *testing.T) {
	f := func(seed uint64, nRaw, qRaw uint8) bool {
		n := 1 + int(nRaw%8)
		q := int(qRaw) % n
		s := NewSeeded(n, seed)
		for _, g := range randomProgram(seed^0xabc, n, 60) {
			g.apply(s)
		}
		first := s.Measure(q)
		return s.Measure(q) == first && s.Measure(q) == first
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: a state's own stabilizer generators always have expectation +1
// and pairwise commute, after any program.
func TestQuickOwnStabilizersHold(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := 2 + int(nRaw%8)
		s := NewSeeded(n, seed)
		for _, g := range randomProgram(seed^0x777, n, 80) {
			g.apply(s)
		}
		for i := 0; i < n; i++ {
			gi := s.Stabilizer(i)
			if s.Expectation(gi) != 1 {
				return false
			}
			for j := i + 1; j < n; j++ {
				if !gi.Commutes(s.Stabilizer(j)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: ApplyPauli twice is the identity.
func TestQuickPauliInvolution(t *testing.T) {
	f := func(seed uint64, nRaw uint8, letters []byte) bool {
		n := 1 + int(nRaw%10)
		p := pauli.NewIdentity(n)
		for q := 0; q < n && q < len(letters); q++ {
			p.Set(q, "IXYZ"[int(letters[q])%4])
		}
		s := NewSeeded(n, seed)
		for _, g := range randomProgram(seed^0x31, n, 40) {
			g.apply(s)
		}
		ref := s.Clone()
		s.ApplyPauli(p)
		s.ApplyPauli(p)
		return s.SameState(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
