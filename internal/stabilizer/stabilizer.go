// Package stabilizer implements the Aaronson–Gottesman tableau simulation
// of stabilizer circuits (CHP): Clifford gates and Pauli measurements on n
// qubits in O(n) / O(n²) time instead of O(2^n).
//
// This is the mathematical core of ARQ, the paper's quantum-architecture
// simulator: "ARQ avoids exponential simulation costs by simulating only a
// subset of the possible quantum gates, which can be simulated in
// polynomial time using a mathematical stabilizer formalism".
//
// The tableau stores 2n+1 rows of X/Z bit vectors plus a sign bit: rows
// 0..n-1 are destabilizer generators, rows n..2n-1 stabilizer generators,
// and row 2n is scratch space for determinate measurements.
package stabilizer

import (
	"fmt"
	"math/bits"
	"math/rand/v2"
	"strings"

	"qla/internal/pauli"
)

// State is an n-qubit stabilizer state.
type State struct {
	n     int
	w     int // words per row
	x     [][]uint64
	z     [][]uint64
	r     []uint8 // sign bits (0 => +, 1 => -)
	rng   *rand.Rand
	xbuf  []uint64 // scratch for MeasurePauli
	zbuf  []uint64
	germs int // count of random measurement outcomes drawn (for tests)
}

// New returns the n-qubit state |0…0⟩ with a deterministically seeded RNG.
func New(n int) *State {
	return NewSeeded(n, 0x51ab1712)
}

// NewSeeded returns |0…0⟩ on n qubits using the given RNG seed for random
// measurement outcomes.
func NewSeeded(n int, seed uint64) *State {
	return NewWithRand(n, rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)))
}

// NewWithRand returns |0…0⟩ on n qubits drawing measurement randomness from
// rng.
func NewWithRand(n int, rng *rand.Rand) *State {
	if n <= 0 {
		panic("stabilizer: number of qubits must be positive")
	}
	w := (n + 63) / 64
	s := &State{
		n:    n,
		w:    w,
		x:    make([][]uint64, 2*n+1),
		z:    make([][]uint64, 2*n+1),
		r:    make([]uint8, 2*n+1),
		rng:  rng,
		xbuf: make([]uint64, w),
		zbuf: make([]uint64, w),
	}
	backing := make([]uint64, 2*(2*n+1)*w)
	for i := range s.x {
		s.x[i] = backing[:w:w]
		backing = backing[w:]
		s.z[i] = backing[:w:w]
		backing = backing[w:]
	}
	for i := 0; i < n; i++ {
		s.x[i][i/64] |= 1 << (uint(i) % 64)   // destabilizer i = X_i
		s.z[i+n][i/64] |= 1 << (uint(i) % 64) // stabilizer i  = Z_i
	}
	return s
}

// N returns the number of qubits.
func (s *State) N() int { return s.n }

// RandomOutcomes returns how many uniformly random measurement outcomes the
// state has produced so far.
func (s *State) RandomOutcomes() int { return s.germs }

// Clone returns a deep copy sharing nothing with s. The RNG position is
// NOT preserved: the clone's RNG stream is split off the parent's
// (Clone advances the parent RNG by two draws), so sibling clones of
// the same state draw independent measurement randomness — seeding them
// identically would silently correlate Monte Carlo branches that fork a
// shared prefix state — while a fixed parent seed still reproduces the
// same clone streams in the same clone order.
func (s *State) Clone() *State {
	c := NewWithRand(s.n, rand.New(rand.NewPCG(s.rng.Uint64(), s.rng.Uint64())))
	for i := range s.x {
		copy(c.x[i], s.x[i])
		copy(c.z[i], s.z[i])
	}
	copy(c.r, s.r)
	c.germs = s.germs
	return c
}

func (s *State) check(q int) {
	if q < 0 || q >= s.n {
		panic(fmt.Sprintf("stabilizer: qubit %d out of range [0,%d)", q, s.n))
	}
}

func bit(v []uint64, q int) uint64 { return v[q/64] >> (uint(q) % 64) & 1 }

func setBit(v []uint64, q int, b uint64) {
	if b != 0 {
		v[q/64] |= 1 << (uint(q) % 64)
	} else {
		v[q/64] &^= 1 << (uint(q) % 64)
	}
}

// --- Clifford gates ---

// H applies the Hadamard gate to qubit q.
func (s *State) H(q int) {
	s.check(q)
	wi, m := q/64, uint64(1)<<(uint(q)%64)
	for i := 0; i <= 2*s.n; i++ {
		xv, zv := s.x[i][wi]&m, s.z[i][wi]&m
		if xv != 0 && zv != 0 {
			s.r[i] ^= 1
		}
		if (xv != 0) != (zv != 0) {
			s.x[i][wi] ^= m
			s.z[i][wi] ^= m
		}
	}
}

// S applies the phase gate diag(1, i) to qubit q.
func (s *State) S(q int) {
	s.check(q)
	wi, m := q/64, uint64(1)<<(uint(q)%64)
	for i := 0; i <= 2*s.n; i++ {
		xv := s.x[i][wi] & m
		if xv != 0 && s.z[i][wi]&m != 0 {
			s.r[i] ^= 1
		}
		if xv != 0 {
			s.z[i][wi] ^= m
		}
	}
}

// Sdg applies the inverse phase gate diag(1, -i) to qubit q.
func (s *State) Sdg(q int) {
	s.Z(q)
	s.S(q)
}

// X applies the Pauli X gate to qubit q.
func (s *State) X(q int) {
	s.check(q)
	wi, m := q/64, uint64(1)<<(uint(q)%64)
	for i := 0; i <= 2*s.n; i++ {
		if s.z[i][wi]&m != 0 {
			s.r[i] ^= 1
		}
	}
}

// Z applies the Pauli Z gate to qubit q.
func (s *State) Z(q int) {
	s.check(q)
	wi, m := q/64, uint64(1)<<(uint(q)%64)
	for i := 0; i <= 2*s.n; i++ {
		if s.x[i][wi]&m != 0 {
			s.r[i] ^= 1
		}
	}
}

// Y applies the Pauli Y gate to qubit q.
func (s *State) Y(q int) {
	s.check(q)
	wi, m := q/64, uint64(1)<<(uint(q)%64)
	for i := 0; i <= 2*s.n; i++ {
		if (s.x[i][wi]&m != 0) != (s.z[i][wi]&m != 0) {
			s.r[i] ^= 1
		}
	}
}

// CNOT applies a controlled-NOT with control c and target t.
func (s *State) CNOT(c, t int) {
	s.check(c)
	s.check(t)
	if c == t {
		panic("stabilizer: CNOT control equals target")
	}
	cw, cm := c/64, uint64(1)<<(uint(c)%64)
	tw, tm := t/64, uint64(1)<<(uint(t)%64)
	for i := 0; i <= 2*s.n; i++ {
		xc := s.x[i][cw]&cm != 0
		zc := s.z[i][cw]&cm != 0
		xt := s.x[i][tw]&tm != 0
		zt := s.z[i][tw]&tm != 0
		if xc && zt && (xt == zc) {
			s.r[i] ^= 1
		}
		if xc {
			s.x[i][tw] ^= tm
		}
		if zt {
			s.z[i][cw] ^= cm
		}
	}
}

// CZ applies a controlled-Z between qubits a and b.
func (s *State) CZ(a, b int) {
	s.H(b)
	s.CNOT(a, b)
	s.H(b)
}

// SWAP exchanges qubits a and b.
func (s *State) SWAP(a, b int) {
	s.CNOT(a, b)
	s.CNOT(b, a)
	s.CNOT(a, b)
}

// ApplyPauli applies the Pauli operator p (which must act on s.n qubits) as
// a gate. Its phase must be ±1 (a phase of -1 is a global phase and is
// ignored, as stabilizer states carry no global phase).
func (s *State) ApplyPauli(p pauli.String) {
	if p.N != s.n {
		panic("stabilizer: ApplyPauli size mismatch")
	}
	for q := 0; q < s.n; q++ {
		switch p.At(q) {
		case 'X':
			s.X(q)
		case 'Y':
			s.Y(q)
		case 'Z':
			s.Z(q)
		}
	}
}

// --- rowsum: the AG phase-tracking group product ---

// rowsum multiplies row h by row i (R_h := R_i · R_h), maintaining signs.
func (s *State) rowsum(h, i int) {
	sum := 2*int(s.r[h]) + 2*int(s.r[i])
	xi, zi := s.x[i], s.z[i]
	xh, zh := s.x[h], s.z[h]
	for w := 0; w < s.w; w++ {
		a, b, c, d := xi[w], zi[w], xh[w], zh[w]
		// positive (g=+1) and negative (g=-1) contribution masks; see
		// Aaronson & Gottesman (2004), eq. for g(x1,z1,x2,z2).
		pos := (a & b & ^c & d) | (a & ^b & c & d) | (^a & b & c & ^d)
		neg := (a & b & c & ^d) | (a & ^b & ^c & d) | (^a & b & c & d)
		sum += bits.OnesCount64(pos) - bits.OnesCount64(neg)
		xh[w] = a ^ c
		zh[w] = b ^ d
	}
	if ((sum%4)+4)%4 == 2 {
		s.r[h] = 1
	} else {
		s.r[h] = 0
	}
}

// --- measurement ---

// Measure performs a Z-basis measurement of qubit q, collapsing the state.
// It returns 0 or 1.
func (s *State) Measure(q int) int {
	s.check(q)
	wi, m := q/64, uint64(1)<<(uint(q)%64)
	p := -1
	for i := s.n; i < 2*s.n; i++ {
		if s.x[i][wi]&m != 0 {
			p = i
			break
		}
	}
	if p >= 0 {
		// Random outcome.
		for i := 0; i <= 2*s.n; i++ {
			if i != p && s.x[i][wi]&m != 0 {
				s.rowsum(i, p)
			}
		}
		copy(s.x[p-s.n], s.x[p])
		copy(s.z[p-s.n], s.z[p])
		s.r[p-s.n] = s.r[p]
		for w := 0; w < s.w; w++ {
			s.x[p][w] = 0
			s.z[p][w] = 0
		}
		setBit(s.z[p], q, 1)
		out := uint8(s.rng.IntN(2))
		s.germs++
		s.r[p] = out
		return int(out)
	}
	// Determinate outcome via scratch row.
	sc := 2 * s.n
	for w := 0; w < s.w; w++ {
		s.x[sc][w] = 0
		s.z[sc][w] = 0
	}
	s.r[sc] = 0
	for i := 0; i < s.n; i++ {
		if s.x[i][wi]&m != 0 {
			s.rowsum(sc, i+s.n)
		}
	}
	return int(s.r[sc])
}

// MeasureForced measures qubit q and, when the outcome is random, forces it
// to the supplied value (postselection). It returns the outcome and whether
// the outcome was random. Forcing a determinate measurement to the opposite
// value is impossible and reported via ok=false with the true outcome.
func (s *State) MeasureForced(q, want int) (out int, random, ok bool) {
	s.check(q)
	wi, m := q/64, uint64(1)<<(uint(q)%64)
	p := -1
	for i := s.n; i < 2*s.n; i++ {
		if s.x[i][wi]&m != 0 {
			p = i
			break
		}
	}
	if p < 0 {
		got := s.Measure(q)
		return got, false, got == want
	}
	for i := 0; i <= 2*s.n; i++ {
		if i != p && s.x[i][wi]&m != 0 {
			s.rowsum(i, p)
		}
	}
	copy(s.x[p-s.n], s.x[p])
	copy(s.z[p-s.n], s.z[p])
	s.r[p-s.n] = s.r[p]
	for w := 0; w < s.w; w++ {
		s.x[p][w] = 0
		s.z[p][w] = 0
	}
	setBit(s.z[p], q, 1)
	s.r[p] = uint8(want)
	return want, true, true
}

// MeasureReset measures qubit q and resets it to |0⟩, returning the
// pre-reset outcome.
func (s *State) MeasureReset(q int) int {
	out := s.Measure(q)
	if out == 1 {
		s.X(q)
	}
	return out
}

// Reset forces qubit q to |0⟩ regardless of its state.
func (s *State) Reset(q int) {
	s.MeasureReset(q)
}

// ResetAllZero returns the state to |0…0⟩ in place, reusing the tableau
// allocation — the scratch-reuse primitive for Monte Carlo worker pools
// that run many trials per State. The RNG (and its stream position) is
// untouched; callers needing a per-trial deterministic outcome stream
// reseed the rand.Source they passed to NewWithRand.
func (s *State) ResetAllZero() {
	for i := range s.x {
		clear(s.x[i])
		clear(s.z[i])
	}
	clear(s.r)
	for i := 0; i < s.n; i++ {
		s.x[i][i/64] |= 1 << (uint(i) % 64)     // destabilizer i = X_i
		s.z[i+s.n][i/64] |= 1 << (uint(i) % 64) // stabilizer i  = Z_i
	}
	s.germs = 0
}

// --- Pauli-operator measurement and expectations ---

func (s *State) anticommutesRow(i int, px, pz []uint64) bool {
	parity := 0
	for w := 0; w < s.w; w++ {
		parity ^= bits.OnesCount64(s.x[i][w]&pz[w]) & 1
		parity ^= bits.OnesCount64(s.z[i][w]&px[w]) & 1
	}
	return parity == 1
}

// Expectation returns the expectation value of the Hermitian Pauli operator
// p in the current state: +1, -1, or 0 when the outcome would be random.
// p.Phase must be 0 or 2 (a ± sign).
func (s *State) Expectation(p pauli.String) int {
	if p.N != s.n {
		panic("stabilizer: Expectation size mismatch")
	}
	if p.Phase%2 != 0 {
		panic("stabilizer: non-Hermitian Pauli (phase ±i)")
	}
	for i := s.n; i < 2*s.n; i++ {
		if s.anticommutesRow(i, p.X, p.Z) {
			return 0
		}
	}
	// p commutes with the stabilizer: ±p is in the group. Accumulate the
	// product of stabilizers selected by anticommuting destabilizers.
	sc := 2 * s.n
	for w := 0; w < s.w; w++ {
		s.x[sc][w] = 0
		s.z[sc][w] = 0
	}
	s.r[sc] = 0
	for i := 0; i < s.n; i++ {
		if s.anticommutesRow(i, p.X, p.Z) {
			s.rowsum(sc, i+s.n)
		}
	}
	// The scratch row now equals ±p as an operator. Tableau rows are
	// letter-form Paulis (bits 11 mean Y, not XZ) with sign (-1)^r, so the
	// letter-form phase exponent is simply 2r.
	if 2*int(s.r[sc]) == int(p.Phase)%4 {
		return +1
	}
	return -1
}

// MeasurePauli measures the Hermitian Pauli operator p, collapsing the
// state, and returns the outcome bit (0 for +1 eigenvalue, 1 for -1).
func (s *State) MeasurePauli(p pauli.String) int {
	if p.N != s.n {
		panic("stabilizer: MeasurePauli size mismatch")
	}
	if p.Phase%2 != 0 {
		panic("stabilizer: non-Hermitian Pauli (phase ±i)")
	}
	anti := -1
	for i := s.n; i < 2*s.n; i++ {
		if s.anticommutesRow(i, p.X, p.Z) {
			anti = i
			break
		}
	}
	if anti < 0 {
		if s.Expectation(p) == +1 {
			return 0
		}
		return 1
	}
	for i := 0; i <= 2*s.n; i++ {
		if i != anti && s.anticommutesRow(i, p.X, p.Z) {
			s.rowsum(i, anti)
		}
	}
	copy(s.x[anti-s.n], s.x[anti])
	copy(s.z[anti-s.n], s.z[anti])
	s.r[anti-s.n] = s.r[anti]
	// Install (-1)^out · p as the new stabilizer row; rows are letter-form
	// Paulis, so the row sign is p's sign plus the outcome.
	out := s.rng.IntN(2)
	s.germs++
	copy(s.x[anti], p.X)
	copy(s.z[anti], p.Z)
	s.r[anti] = uint8((int(p.Phase)/2 + out) % 2)
	return out
}

// --- inspection ---

// Stabilizer returns the i-th stabilizer generator (0 ≤ i < n) as a Pauli
// string in letter form with sign.
func (s *State) Stabilizer(i int) pauli.String {
	if i < 0 || i >= s.n {
		panic("stabilizer: generator index out of range")
	}
	return s.rowPauli(i + s.n)
}

// Destabilizer returns the i-th destabilizer generator.
func (s *State) Destabilizer(i int) pauli.String {
	if i < 0 || i >= s.n {
		panic("stabilizer: generator index out of range")
	}
	return s.rowPauli(i)
}

func (s *State) rowPauli(row int) pauli.String {
	p := pauli.NewIdentity(s.n)
	copy(p.X, s.x[row])
	copy(p.Z, s.z[row])
	p.Phase = uint8(2 * int(s.r[row]))
	return p
}

// SameState reports whether s and o describe the same quantum state. It
// checks that every stabilizer generator of o has expectation +1 in s
// (sufficient for two n-qubit stabilizer states).
func (s *State) SameState(o *State) bool {
	if s.n != o.n {
		return false
	}
	for i := 0; i < o.n; i++ {
		if s.Expectation(o.Stabilizer(i)) != +1 {
			return false
		}
	}
	return true
}

// String renders the stabilizer generators, one per line.
func (s *State) String() string {
	var sb strings.Builder
	for i := 0; i < s.n; i++ {
		sb.WriteString(s.Stabilizer(i).String())
		if i < s.n-1 {
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

// CheckInvariants verifies the tableau's structural invariants:
// destabilizer i anticommutes with stabilizer i and commutes with all other
// rows. It returns an error describing the first violation.
func (s *State) CheckInvariants() error {
	for i := 0; i < s.n; i++ {
		di := s.rowPauli(i)
		for j := 0; j < s.n; j++ {
			sj := s.rowPauli(j + s.n)
			comm := di.Commutes(sj)
			if i == j && comm {
				return fmt.Errorf("stabilizer: destabilizer %d commutes with its stabilizer", i)
			}
			if i != j && !comm {
				return fmt.Errorf("stabilizer: destabilizer %d anticommutes with stabilizer %d", i, j)
			}
		}
		for j := i + 1; j < s.n; j++ {
			if !s.rowPauli(i).Commutes(s.rowPauli(j)) {
				return fmt.Errorf("stabilizer: destabilizers %d and %d anticommute", i, j)
			}
			if !s.rowPauli(i + s.n).Commutes(s.rowPauli(j + s.n)) {
				return fmt.Errorf("stabilizer: stabilizers %d and %d anticommute", i, j)
			}
		}
	}
	return nil
}
