package sweep

// The machine-sweep registry experiment: the synchronous face of this
// package, so the param-set × level × bandwidth grid is also runnable
// through Engine.Run, qlabench -exp machine-sweep, and POST /v1/run
// (where the whole aggregated sweep Result is cached under the
// machine-sweep Spec's own hash). The registration lives in
// internal/engine (parameters, validation, goldens); only the Run and
// Report bodies arrive from here, via engine.RegisterMachineSweep.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"qla/internal/engine"
)

func init() {
	engine.RegisterMachineSweep(runMachineSweep, reportMachineSweep)
}

func runMachineSweep(ctx context.Context, rc *engine.RunContext) (any, error) {
	baseName := rc.Params.Str("experiment")
	baseExp, ok := engine.Lookup(baseName)
	if !ok {
		return nil, fmt.Errorf("machine-sweep: unknown base experiment %q", baseName)
	}
	if baseExp.Name == "machine-sweep" {
		// A self-referential base would recurse through the registry
		// (each nesting re-reads the same params) without bound.
		return nil, fmt.Errorf("machine-sweep: cannot sweep machine-sweep itself")
	}
	base := engine.Spec{Experiment: baseExp.Name, Machine: rc.Machine}
	if raw := rc.Params.Str("base-params"); raw != "" {
		dec := json.NewDecoder(bytes.NewReader([]byte(raw)))
		dec.DisallowUnknownFields()
		var p engine.Params
		if err := dec.Decode(&p); err != nil {
			return nil, fmt.Errorf("machine-sweep: base-params: %w", err)
		}
		if dec.More() {
			return nil, fmt.Errorf("machine-sweep: base-params: trailing data after JSON object")
		}
		base.Params = p
	}
	var axes []Axis
	if sets := splitComma(rc.Params.Str("param-sets")); len(sets) > 0 {
		vals := make([]any, len(sets))
		for i, s := range sets {
			vals[i] = s
		}
		axes = append(axes, Axis{Field: "machine.param_set", Values: vals})
	}
	for _, ax := range []struct {
		field string
		vals  []int
	}{
		{"machine.level", rc.Params.Ints("levels")},
		{"machine.bandwidth", rc.Params.Ints("bandwidths")},
	} {
		if len(ax.vals) == 0 {
			continue
		}
		vals := make([]any, len(ax.vals))
		for i, v := range ax.vals {
			vals[i] = v
		}
		axes = append(axes, Axis{Field: ax.field, Values: vals})
	}
	sw, err := Expand(Spec{Base: base, Axes: axes})
	if err != nil {
		return nil, err
	}
	// Concurrency stays 0 (the scheduler-aware default): rc.Parallelism
	// is the Monte Carlo worker width of ONE run, and using it to also
	// multiply points in flight would oversubscribe unscheduled engines
	// quadratically.
	runner := &Runner{Engine: rc.Engine}
	return runner.Run(ctx, sw, nil)
}

func reportMachineSweep(w io.Writer, res engine.Result) error {
	data, ok := res.Data.(*Result)
	if !ok {
		raw, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		_, err = fmt.Fprintf(w, "%s\n", raw)
		return err
	}
	return data.WriteTable(w)
}

// splitComma splits a comma-separated list, trimming blanks.
func splitComma(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
