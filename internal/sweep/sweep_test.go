package sweep

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"qla/internal/cache"
	"qla/internal/engine"
)

// gridSpec is the acceptance-criteria grid: param-set × level ×
// bandwidth over the machine-aware EC-latency analysis, 12 points.
func gridSpec() Spec {
	return Spec{
		Base: engine.Spec{Experiment: "ec-latency"},
		Axes: []Axis{
			{Field: "machine.param_set", Values: []any{"expected", "current"}},
			{Field: "machine.level", Values: []any{1, 2}},
			{Field: "machine.bandwidth", Values: []any{1, 2, 4}},
		},
	}
}

func TestExpandGrid(t *testing.T) {
	sw, err := Expand(gridSpec())
	if err != nil {
		t.Fatal(err)
	}
	if sw.Experiment != "ec-latency" {
		t.Errorf("experiment = %q", sw.Experiment)
	}
	if len(sw.Points) != 12 {
		t.Fatalf("expanded %d points, want 12", len(sw.Points))
	}
	wantFields := []string{"machine.param_set", "machine.level", "machine.bandwidth"}
	if len(sw.Fields) != 3 || sw.Fields[0] != wantFields[0] || sw.Fields[1] != wantFields[1] || sw.Fields[2] != wantFields[2] {
		t.Errorf("fields = %v", sw.Fields)
	}
	// Row-major, last axis fastest.
	wantHead := [][3]any{
		{"expected", 1, 1},
		{"expected", 1, 2},
		{"expected", 1, 4},
		{"expected", 2, 1},
	}
	for i, want := range wantHead {
		got := sw.Points[i].Coords
		if got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
			t.Errorf("point %d coords = %v, want %v", i, got, want)
		}
	}
	// Every point is a distinct, fully canonical run.
	seen := map[string]bool{}
	for i, pt := range sw.Points {
		if seen[pt.Canonical.Hash] {
			t.Errorf("point %d repeats hash %s", i, pt.Canonical.Hash)
		}
		seen[pt.Canonical.Hash] = true
		m := pt.Canonical.Spec.Machine
		if m.ParamSet != pt.Coords[0] || m.Level != pt.Coords[1] || m.Bandwidth != pt.Coords[2] {
			t.Errorf("point %d machine %+v does not match coords %v", i, m, pt.Coords)
		}
	}
}

// TestExpandSpellingInvariant: equivalent spellings — base aliases,
// float-typed integer axis values, omitted defaults — expand to the
// same canonical encoding, sweep hash and point hashes.
func TestExpandSpellingInvariant(t *testing.T) {
	a, err := Expand(gridSpec())
	if err != nil {
		t.Fatal(err)
	}
	spelled := Spec{
		Base: engine.Spec{Experiment: "ecc", Machine: engine.MachineSpec{ParamSet: "expected"}},
		Axes: []Axis{
			{Field: "machine.param_set", Values: []any{"expected", "current"}},
			{Field: "machine.level", Values: []any{1.0, 2.0}},
			{Field: "machine.bandwidth", Values: []any{1.0, 2.0, 4.0}},
		},
	}
	b, err := Expand(spelled)
	if err != nil {
		t.Fatal(err)
	}
	if a.Hash != b.Hash {
		t.Errorf("equivalent sweeps hash differently:\n%s\nvs\n%s", a.JSON, b.JSON)
	}
	for i := range a.Points {
		if a.Points[i].Canonical.Hash != b.Points[i].Canonical.Hash {
			t.Errorf("point %d hashes differ", i)
		}
	}
	// And expansion is deterministic run to run.
	c, err := Expand(gridSpec())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.JSON, c.JSON) || a.Hash != c.Hash {
		t.Error("expansion not deterministic")
	}
}

func TestExpandValidation(t *testing.T) {
	axis := func(f string, vals ...any) Axis { return Axis{Field: f, Values: vals} }
	ec := engine.Spec{Experiment: "ec-latency"}
	manyVals := make([]any, 100)
	for i := range manyVals {
		manyVals[i] = i + 1
	}
	for _, tc := range []struct {
		name     string
		spec     Spec
		contains string
	}{
		{"bad base", Spec{Base: engine.Spec{Experiment: "no-such"}, Axes: []Axis{axis("machine.level", 1)}}, "unknown experiment"},
		{"no axes", Spec{Base: ec}, "no axes"},
		{"too many axes", Spec{Base: ec, Axes: []Axis{
			axis("machine.level", 1), axis("machine.bandwidth", 1), axis("machine.param_set", "expected"),
			axis("machine.logical_qubits", 1), axis("params.x", 1), axis("params.y", 1), axis("params.z", 1),
		}}, "axes exceeds the maximum"},
		{"empty values", Spec{Base: ec, Axes: []Axis{axis("machine.level")}}, "has no values"},
		{"duplicate field", Spec{Base: ec, Axes: []Axis{axis("machine.level", 1), axis("machine.level", 2)}}, "duplicate axis field"},
		{"duplicate value", Spec{Base: ec, Axes: []Axis{axis("machine.level", 2, 2.0)}}, "repeats value"},
		{"unknown field", Spec{Base: ec, Axes: []Axis{axis("machine.tech", 1)}}, "unknown axis field"},
		{"unknown param", Spec{Base: ec, Axes: []Axis{axis("params.trials", 1)}}, `declares no parameter "trials"`},
		{"uncoercible value", Spec{Base: ec, Axes: []Axis{axis("machine.level", "two")}}, "want integer"},
		{"machine axis on machineless experiment", Spec{Base: engine.Spec{Experiment: "table1"}, Axes: []Axis{axis("machine.level", 1)}}, "no machine configuration"},
		{"nested sweep", Spec{Base: engine.Spec{Experiment: "sweep"}, Axes: []Axis{axis("machine.level", 1)}}, "cannot be swept"},
		{"duplicate point", Spec{Base: ec, Axes: []Axis{axis("machine.level", 0, 2)}}, "same run"},
		{"negative level point", Spec{Base: ec, Axes: []Axis{axis("machine.level", -1, 1)}}, "negative recursion level"},
		{"grid too big", Spec{Base: engine.Spec{Experiment: "equation2"}, Axes: []Axis{
			axis("machine.level", manyVals...), axis("params.level", manyVals...),
		}}, "exceeds the maximum"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Expand(tc.spec)
			if err == nil {
				t.Fatal("expand accepted an invalid sweep")
			}
			if !strings.Contains(err.Error(), tc.contains) {
				t.Errorf("error %q does not contain %q", err, tc.contains)
			}
		})
	}
}

// comparablePoints strips the nondeterministic timing metadata from a
// sweep Result, keeping everything the determinism contract covers:
// coordinates, spec hashes, status, and the per-point experiment data
// payloads.
func comparablePoints(t *testing.T, res *Result) []byte {
	t.Helper()
	type stable struct {
		Coords   []any           `json:"coords"`
		SpecHash string          `json:"spec_hash"`
		Status   string          `json:"status"`
		Error    string          `json:"error,omitempty"`
		Data     json.RawMessage `json:"data,omitempty"`
	}
	out := make([]stable, len(res.Points))
	for i, pt := range res.Points {
		out[i] = stable{Coords: pt.Coords, SpecHash: pt.SpecHash, Status: pt.Status, Error: pt.Error}
		if len(pt.Result) > 0 {
			var body struct {
				Data json.RawMessage `json:"data"`
			}
			if err := json.Unmarshal(pt.Result, &body); err != nil {
				t.Fatalf("point %d result not a Result: %v", i, err)
			}
			out[i].Data = body.Data
		}
	}
	raw, err := json.Marshal(out)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestRunDeterminism: the same SweepSpec produces identical per-point
// spec hashes and byte-identical aggregated data at any engine
// parallelism and any point concurrency.
func TestRunDeterminism(t *testing.T) {
	spec := Spec{
		Base: engine.Spec{Experiment: "run-chain", Params: engine.Params{"trials": 80, "seed": 9}},
		Axes: []Axis{
			{Field: "params.links", Values: []any{2, 3}},
			{Field: "params.purify-rounds", Values: []any{0, 1}},
		},
	}
	var blobs [][]byte
	for _, cfg := range []struct{ par, conc int }{{1, 1}, {8, 4}} {
		sw, err := Expand(spec)
		if err != nil {
			t.Fatal(err)
		}
		r := &Runner{Engine: engine.New(engine.WithParallelism(cfg.par)), Concurrency: cfg.conc}
		res, err := r.Run(context.Background(), sw, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Total != 4 || res.OK != 4 || res.Failed != 0 || res.Cached != 0 {
			t.Fatalf("counters %+v", res)
		}
		blobs = append(blobs, comparablePoints(t, res))
	}
	if !bytes.Equal(blobs[0], blobs[1]) {
		t.Errorf("sweep diverged across parallelism:\n%s\nvs\n%s", blobs[0], blobs[1])
	}
}

// TestRunSharedCache: re-running a sweep against the same cache serves
// every point from it, byte-identically.
func TestRunSharedCache(t *testing.T) {
	sw, err := Expand(gridSpec())
	if err != nil {
		t.Fatal(err)
	}
	c := cache.New(0)
	r := &Runner{Engine: engine.New(), Cache: c}
	first, err := r.Run(context.Background(), sw, nil)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached != 0 || first.OK != 12 {
		t.Fatalf("first run counters %+v", first)
	}
	second, err := r.Run(context.Background(), sw, nil)
	if err != nil {
		t.Fatal(err)
	}
	if second.Cached != 12 || second.OK != 12 {
		t.Fatalf("second run counters: ok=%d cached=%d", second.OK, second.Cached)
	}
	for i := range first.Points {
		if !bytes.Equal(first.Points[i].Result, second.Points[i].Result) {
			t.Errorf("point %d bytes not replayed verbatim", i)
		}
	}
}

// TestRunPointFailure: a failing point is recorded and the sweep
// continues.
func TestRunPointFailure(t *testing.T) {
	sw, err := Expand(Spec{
		Base: engine.Spec{Experiment: "equation2"},
		Axes: []Axis{{Field: "params.level", Values: []any{-1, 2}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	var last Progress
	res, err := (&Runner{Engine: engine.New()}).Run(context.Background(), sw, func(p Progress) { last = p })
	if err != nil {
		t.Fatal(err)
	}
	if res.OK != 1 || res.Failed != 1 {
		t.Fatalf("counters %+v", res)
	}
	if res.Points[0].Status != "error" || !strings.Contains(res.Points[0].Error, "non-negative") {
		t.Errorf("failing point %+v", res.Points[0])
	}
	if res.Points[1].Status != "ok" || len(res.Points[1].Result) == 0 {
		t.Errorf("ok point %+v", res.Points[1])
	}
	if last != (Progress{Total: 2, Done: 2, Cached: 0, Failed: 1}) {
		t.Errorf("final progress %+v", last)
	}
}

// TestRunCancelled: a cancelled context aborts the sweep with its
// error.
func TestRunCancelled(t *testing.T) {
	sw, err := Expand(gridSpec())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := (&Runner{Engine: engine.New()}).Run(ctx, sw, nil); err != context.Canceled {
		t.Fatalf("err = %v", err)
	}
}

// TestRunDeadlineMidSweep: a deadline that kills points mid-run fails
// the sweep with the deadline error — points that "completed" only as
// deadline casualties must not count as a clean finish.
func TestRunDeadlineMidSweep(t *testing.T) {
	sw, err := Expand(Spec{
		Base: engine.Spec{Experiment: "figure7", Params: engine.Params{"phys-errors": []float64{0.004}, "trials": 120000, "seed": 3}},
		Axes: []Axis{{Field: "params.seed", Values: []any{51, 52}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := (&Runner{Engine: engine.New()}).Run(ctx, sw, nil); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
}

// TestMachineSweepExperiment: the registry experiment drives the same
// expansion through Engine.Run.
func TestMachineSweepExperiment(t *testing.T) {
	eng := engine.New()
	res, err := eng.Run(context.Background(), engine.Spec{
		Experiment: "machine-sweep",
		Params: engine.Params{
			"experiment": "ecc", // alias resolves
			"param-sets": "expected,current",
			"levels":     []int{1, 2},
			"bandwidths": []int{2},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	data, ok := res.Data.(*Result)
	if !ok {
		t.Fatalf("data is %T", res.Data)
	}
	if data.Experiment != "ec-latency" || data.Total != 4 || data.OK != 4 {
		t.Errorf("sweep result %+v", data)
	}
	if data.SweepHash == "" {
		t.Error("missing sweep hash")
	}
	// The payload must survive the JSON transport a serving front end
	// uses.
	if _, err := json.Marshal(res); err != nil {
		t.Fatal(err)
	}
}

func TestMachineSweepRejectsSelf(t *testing.T) {
	_, err := engine.New().Run(context.Background(), engine.Spec{
		Experiment: "machine-sweep",
		Params:     engine.Params{"experiment": "sweep"}, // its own alias
	})
	if err == nil || !strings.Contains(err.Error(), "cannot sweep machine-sweep itself") {
		t.Fatalf("err = %v", err)
	}
}

func TestMachineSweepBaseParams(t *testing.T) {
	res, err := engine.New().Run(context.Background(), engine.Spec{
		Experiment: "machine-sweep",
		Params: engine.Params{
			"experiment":  "equation2",
			"base-params": `{"pth":0.001}`,
			"param-sets":  "expected",
			"levels":      []int{2},
			"bandwidths":  []int{2},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	data := res.Data.(*Result)
	var body struct {
		Params engine.Params `json:"params"`
	}
	if err := json.Unmarshal(data.Points[0].Result, &body); err != nil {
		t.Fatal(err)
	}
	if got := body.Params["pth"]; got != 0.001 {
		t.Errorf("base-params not applied: pth = %v", got)
	}
	// Malformed base-params error cleanly, trailing data included.
	for _, bad := range []string{`{"bogus`, `{} trailing`} {
		if _, err := engine.New().Run(context.Background(), engine.Spec{
			Experiment: "machine-sweep",
			Params:     engine.Params{"base-params": bad},
		}); err == nil || !strings.Contains(err.Error(), "base-params") {
			t.Fatalf("base-params %q: err = %v", bad, err)
		}
	}
}

// TestRunContextCarriesEngine: experiments receive the engine that is
// executing them, which is how machine-sweep shares the caller's
// scheduler budget across its points. (Registered here, not in
// internal/engine's tests, because this test binary does not enumerate
// the registry against the golden spec files.)
func TestRunContextCarriesEngine(t *testing.T) {
	eng := engine.New()
	var got *engine.Engine
	engine.Register(engine.Experiment{
		Name: "test-engine-probe",
		Run: func(ctx context.Context, rc *engine.RunContext) (any, error) {
			got = rc.Engine
			return "ok", nil
		},
	})
	if _, err := eng.Run(context.Background(), engine.Spec{Experiment: "test-engine-probe"}); err != nil {
		t.Fatal(err)
	}
	if got != eng {
		t.Errorf("RunContext.Engine = %p, want %p", got, eng)
	}
}

func TestViews(t *testing.T) {
	sw, err := Expand(gridSpec())
	if err != nil {
		t.Fatal(err)
	}
	res, err := (&Runner{Engine: engine.New()}).Run(context.Background(), sw, nil)
	if err != nil {
		t.Fatal(err)
	}
	var csvBuf bytes.Buffer
	if err := res.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csvBuf.String()), "\n")
	if len(lines) != 13 {
		t.Fatalf("CSV has %d lines, want header + 12", len(lines))
	}
	if lines[0] != "index,machine.param_set,machine.level,machine.bandwidth,status,cached,elapsed_ms,spec_hash,error" {
		t.Errorf("CSV header = %q", lines[0])
	}
	var tblBuf bytes.Buffer
	if err := res.WriteTable(&tblBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tblBuf.String(), "12 points, 12 ok") {
		t.Errorf("table summary missing:\n%s", tblBuf.String())
	}
}
