package sweep

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"qla/internal/cache"
	"qla/internal/engine"
	"qla/internal/faultinject"
)

// smallSpec is a fast 4-point grid over the analytic EC-latency
// experiment — retry mechanics, not Monte Carlo weight.
func smallSpec() Spec {
	return Spec{
		Base: engine.Spec{Experiment: "ec-latency"},
		Axes: []Axis{
			{Field: "machine.level", Values: []any{1, 2}},
			{Field: "machine.bandwidth", Values: []any{1, 2}},
		},
	}
}

// fastRetry keeps test backoffs tiny.
func fastRetry(attempts int) RetryPolicy {
	return RetryPolicy{MaxAttempts: attempts, BaseBackoff: time.Millisecond, MaxBackoff: 4 * time.Millisecond}
}

func expandSmall(t *testing.T) *Sweep {
	t.Helper()
	sw, err := Expand(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	return sw
}

// TestRetryTransientFailure: a point that fails twice with a transient
// error succeeds on the third attempt, and the counts surface
// per-point and in the aggregate.
func TestRetryTransientFailure(t *testing.T) {
	sw := expandSmall(t)
	victim := sw.Points[2].Canonical.Hash
	in := faultinject.New(faultinject.Rule{HashPrefix: victim, Times: 2})
	r := &Runner{Engine: engine.New(), Retry: fastRetry(3), Fault: in.Hook()}
	res, err := r.Run(context.Background(), sw, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK != res.Total || res.Failed != 0 {
		t.Fatalf("sweep did not recover: %+v", res)
	}
	if res.Retried != 1 || res.RetryAttempts != 2 {
		t.Fatalf("retried=%d attempts=%d, want 1/2", res.Retried, res.RetryAttempts)
	}
	for _, pr := range res.Points {
		want := 1
		if pr.SpecHash == victim {
			want = 3
		}
		if pr.Attempts != want {
			t.Errorf("point %d attempts = %d, want %d", pr.Index, pr.Attempts, want)
		}
	}
}

// TestRetryExhaustion: a point that fails on every attempt lands as
// an error after exactly MaxAttempts tries; the rest of the sweep
// completes.
func TestRetryExhaustion(t *testing.T) {
	sw := expandSmall(t)
	victim := sw.Points[0].Canonical.Hash
	in := faultinject.New(faultinject.Rule{HashPrefix: victim, Times: -1})
	r := &Runner{Engine: engine.New(), Retry: fastRetry(3), Fault: in.Hook()}
	res, err := r.Run(context.Background(), sw, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK != res.Total-1 || res.Failed != 1 {
		t.Fatalf("unexpected counts %+v", res)
	}
	pr := res.Points[0]
	if pr.Status != "error" || pr.Attempts != 3 {
		t.Fatalf("victim point %+v", pr)
	}
	if !strings.Contains(pr.Error, "injected transient failure") {
		t.Fatalf("error text %q", pr.Error)
	}
	if in.Fired() != 3 {
		t.Fatalf("fired %d faults, want 3", in.Fired())
	}
}

// TestPermanentFailureNeverRetries: an error that declares itself
// permanent consumes exactly one attempt.
func TestPermanentFailureNeverRetries(t *testing.T) {
	sw := expandSmall(t)
	victim := sw.Points[1].Canonical.Hash
	in := faultinject.New(faultinject.Rule{HashPrefix: victim, Times: -1, Permanent: true})
	r := &Runner{Engine: engine.New(), Retry: fastRetry(5), Fault: in.Hook()}
	res, err := r.Run(context.Background(), sw, nil)
	if err != nil {
		t.Fatal(err)
	}
	pr := res.Points[1]
	if pr.Status != "error" || pr.Attempts != 1 {
		t.Fatalf("permanent failure retried: %+v", pr)
	}
	if in.Fired() != 1 {
		t.Fatalf("fired %d, want 1", in.Fired())
	}
}

// TestRetryAfterPanic: an injected panic is converted to a retryable
// error; the point recovers on the next attempt.
func TestRetryAfterPanic(t *testing.T) {
	sw := expandSmall(t)
	victim := sw.Points[3].Canonical.Hash
	in := faultinject.New(faultinject.Rule{HashPrefix: victim, Mode: faultinject.Panic})
	r := &Runner{Engine: engine.New(), Retry: fastRetry(3), Fault: in.Hook()}
	res, err := r.Run(context.Background(), sw, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK != res.Total {
		t.Fatalf("sweep did not recover from panic: %+v", res)
	}
	if res.Points[3].Attempts != 2 {
		t.Fatalf("attempts = %d, want 2", res.Points[3].Attempts)
	}
}

// TestRetryAfterHang: a hung attempt dies at the per-point deadline,
// classifies transient, and the retry succeeds.
func TestRetryAfterHang(t *testing.T) {
	sw := expandSmall(t)
	victim := sw.Points[0].Canonical.Hash
	in := faultinject.New(faultinject.Rule{HashPrefix: victim, Mode: faultinject.Hang})
	pol := fastRetry(3)
	pol.PointTimeout = 50 * time.Millisecond
	r := &Runner{Engine: engine.New(), Retry: pol, Fault: in.Hook()}
	start := time.Now()
	res, err := r.Run(context.Background(), sw, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK != res.Total {
		t.Fatalf("sweep did not recover from hang: %+v", res)
	}
	if res.Points[0].Attempts != 2 {
		t.Fatalf("attempts = %d, want 2", res.Points[0].Attempts)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("hang recovery took %v", elapsed)
	}
}

// TestCancellationNeverRetries: a cancelled sweep aborts without
// burning retry attempts on the cancellation error.
func TestCancellationNeverRetries(t *testing.T) {
	sw := expandSmall(t)
	ctx, cancel := context.WithCancel(context.Background())
	fired := 0
	r := &Runner{
		Engine:      engine.New(),
		Retry:       fastRetry(5),
		Concurrency: 1,
		Fault: func(fctx context.Context, hash string) error {
			fired++
			cancel()
			return fctx.Err()
		},
	}
	_, err := r.Run(ctx, sw, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want Canceled, got %v", err)
	}
	if fired > 1 {
		t.Fatalf("cancelled attempt retried %d times", fired)
	}
}

// TestRetryWithCache: a failed attempt never poisons the cache — the
// successful retry computes, stores, and a re-run of the sweep is
// fully cached.
func TestRetryWithCache(t *testing.T) {
	sw := expandSmall(t)
	victim := sw.Points[2].Canonical.Hash
	in := faultinject.New(faultinject.Rule{HashPrefix: victim, Times: 2})
	c := cache.New(1 << 20)
	r := &Runner{Engine: engine.New(), Cache: c, Retry: fastRetry(3), Fault: in.Hook()}
	res, err := r.Run(context.Background(), sw, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK != res.Total || res.Retried != 1 {
		t.Fatalf("first run %+v", res)
	}
	res2, err := r.Run(context.Background(), sw, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Cached != res2.Total {
		t.Fatalf("re-run not fully cached: %+v", res2)
	}
	// Byte-identical payloads despite the retries.
	for i := range res.Points {
		if string(res.Points[i].Result) != string(res2.Points[i].Result) {
			t.Fatalf("point %d payload changed across runs", i)
		}
	}
}

// TestObserverSeesEveryPoint: the Observer receives each point exactly
// once with its final state.
func TestObserverSeesEveryPoint(t *testing.T) {
	sw := expandSmall(t)
	victim := sw.Points[1].Canonical.Hash
	in := faultinject.New(faultinject.Rule{HashPrefix: victim})
	seen := map[string]PointResult{}
	r := &Runner{
		Engine:   engine.New(),
		Retry:    fastRetry(2),
		Fault:    in.Hook(),
		Observer: func(pr PointResult) { seen[pr.SpecHash] = pr },
	}
	res, err := r.Run(context.Background(), sw, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != res.Total {
		t.Fatalf("observer saw %d points, want %d", len(seen), res.Total)
	}
	if got := seen[victim]; got.Attempts != 2 || got.Status != "ok" {
		t.Fatalf("observer saw non-final state %+v", got)
	}
}

// TestProgressCarriesRetries: the progress stream reports retry
// attempts monotonically.
func TestProgressCarriesRetries(t *testing.T) {
	sw := expandSmall(t)
	in := faultinject.New(faultinject.Rule{HashPrefix: sw.Points[0].Canonical.Hash, Times: 2})
	var last Progress
	r := &Runner{Engine: engine.New(), Retry: fastRetry(3), Fault: in.Hook(), Concurrency: 1}
	if _, err := r.Run(context.Background(), sw, func(p Progress) {
		if p.Retries < last.Retries || p.Done < last.Done {
			t.Errorf("progress rolled back: %+v after %+v", p, last)
		}
		last = p
	}); err != nil {
		t.Fatal(err)
	}
	if last.Retries != 2 {
		t.Fatalf("final retries = %d, want 2", last.Retries)
	}
}

// TestBackoffShape: deterministic jitter, exponential growth, cap.
func TestBackoffShape(t *testing.T) {
	p := RetryPolicy{BaseBackoff: 100 * time.Millisecond, MaxBackoff: time.Second}.normalized()
	for attempt := 1; attempt <= 6; attempt++ {
		d := p.backoff(attempt, "deadbeef")
		if d != p.backoff(attempt, "deadbeef") {
			t.Fatalf("attempt %d: jitter not deterministic", attempt)
		}
		exp := p.BaseBackoff << (attempt - 1)
		if exp > p.MaxBackoff {
			exp = p.MaxBackoff
		}
		if d < exp/2 || d >= exp {
			t.Fatalf("attempt %d: backoff %v outside [%v, %v)", attempt, d, exp/2, exp)
		}
	}
	if a, b := p.backoff(1, "aaaa"), p.backoff(1, "bbbb"); a == b {
		t.Log("distinct points share a jitter value (legal, 1/1024 chance)")
	}
}
