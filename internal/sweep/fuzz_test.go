package sweep

// FuzzSweepDecode hardens the POST /v1/sweeps input path, mirroring
// FuzzSpecDecode in internal/engine: arbitrary bytes through DecodeSpec
// must produce a SweepSpec or an error, never a panic — and any input
// that expands must expand *stably*: its canonical encoding must itself
// decode strictly and re-expand to the same content address and the
// same per-point hashes (otherwise the job ID would depend on how many
// times a sweep bounced through the wire format).
//
//	go test ./internal/sweep -run '^$' -fuzz FuzzSweepDecode -fuzztime 30s

import (
	"testing"
)

func FuzzSweepDecode(f *testing.F) {
	for _, seed := range []string{
		`{"base":{"experiment":"ec-latency"},"axes":[{"field":"machine.level","values":[1,2]}]}`,
		`{"base":{"experiment":"ecc"},"axes":[{"field":"machine.param_set","values":["expected","current"]},{"field":"machine.bandwidth","values":[1,2,4]}]}`,
		`{"base":{"experiment":"equation2","params":{"pth":0.001}},"axes":[{"field":"params.level","values":[1,2,3]}]}`,
		`{"base":{"experiment":"run-chain","params":{"trials":10}},"axes":[{"field":"params.links","values":[2,3]}]}`,
		`{"base":{"experiment":"figure7"},"axes":[{"field":"params.phys-errors","values":[[0.001],[0.002]]}]}`,
		`{"base":{"experiment":"table1"},"axes":[{"field":"machine.level","values":[1]}]}`,
		`{"base":{"experiment":"ec-latency"},"axes":[]}`,
		`{"base":{"experiment":"ec-latency"},"axes":[{"field":"machine.level","values":[0,2]}]}`,
		`{"axes":[{"field":"machine.level","values":[1]}]}`,
		`{"base":{"experiment":"ec-latency"},"axes":[{"field":"machine.level","values":[1]}]} extra`,
		`{"bogus":1}`,
		`{"base":`,
		`null`,
		`[]`,
		"\xff\xfe",
	} {
		f.Add([]byte(seed))
	}

	f.Fuzz(func(t *testing.T, raw []byte) {
		s, err := DecodeSpec(raw)
		if err != nil {
			return // malformed input must error, and it did
		}
		sw, err := Expand(s)
		if err != nil {
			return // decodes but fails validation: also fine
		}
		back, err := DecodeSpec(sw.JSON)
		if err != nil {
			t.Fatalf("canonical sweep JSON fails strict decode: %v\n%s", err, sw.JSON)
		}
		again, err := Expand(back)
		if err != nil {
			t.Fatalf("canonical sweep JSON fails to re-expand: %v\n%s", err, sw.JSON)
		}
		if again.Hash != sw.Hash {
			t.Fatalf("sweep hash not stable across canonical round trip: %s vs %s\n%s", sw.Hash, again.Hash, sw.JSON)
		}
		if len(again.Points) != len(sw.Points) {
			t.Fatalf("point count changed across round trip: %d vs %d", len(sw.Points), len(again.Points))
		}
		for i := range sw.Points {
			if sw.Points[i].Canonical.Hash != again.Points[i].Canonical.Hash {
				t.Fatalf("point %d hash not stable across canonical round trip", i)
			}
		}
	})
}
