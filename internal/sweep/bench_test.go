package sweep

// Sweep-expansion overhead: the serving layer expands (and so fully
// canonicalizes) every submitted SweepSpec before admitting it as a
// job, so expansion sits on the request path. BENCH_PR5.json records a
// snapshot; CI runs one iteration to keep the harness honest.

import (
	"fmt"
	"testing"

	"qla/internal/engine"
)

func benchGrid(levels int) Spec {
	vals := make([]any, levels)
	for i := range vals {
		vals[i] = i + 1
	}
	return Spec{
		Base: engine.Spec{Experiment: "ec-latency"},
		Axes: []Axis{
			{Field: "machine.param_set", Values: []any{"expected", "current"}},
			{Field: "machine.level", Values: vals},
			{Field: "machine.bandwidth", Values: []any{1, 2, 4}},
		},
	}
}

func BenchmarkSweepExpand(b *testing.B) {
	for _, points := range []int{12, 96} {
		spec := benchGrid(points / 6)
		b.Run(fmt.Sprintf("points=%d", points), func(b *testing.B) {
			b.ReportAllocs()
			var sw *Sweep
			for b.Loop() {
				var err error
				sw, err = Expand(spec)
				if err != nil {
					b.Fatal(err)
				}
			}
			if len(sw.Points) != points {
				b.Fatalf("expanded %d points", len(sw.Points))
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*points), "ns/point")
		})
	}
}
