package sweep

import (
	"context"
	"sync"
	"testing"
	"time"

	"qla/internal/cache"
	"qla/internal/engine"
)

// TestMidComputeLeaseRenewal: with a Renew hook armed, the runner
// calls it periodically while a point computes — with that point's
// hash — and stops once the point finishes.
func TestMidComputeLeaseRenewal(t *testing.T) {
	sw, err := Expand(Spec{
		Base: engine.Spec{Experiment: "figure7", Params: map[string]any{
			"phys-errors": []any{0.004}, "trials": 8000,
		}},
		Axes: []Axis{{Field: "params.seed", Values: []any{41}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	wantHash := sw.Points[0].Canonical.Hash

	var mu sync.Mutex
	renewals := map[string]int{}
	r := &Runner{
		Cache:      cache.New(0),
		RenewEvery: time.Millisecond,
		Renew: func(_ context.Context, pointHash string) {
			mu.Lock()
			renewals[pointHash]++
			mu.Unlock()
		},
	}
	res, err := r.Run(context.Background(), sw, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK != res.Total {
		t.Fatalf("ok=%d of %d", res.OK, res.Total)
	}
	mu.Lock()
	n := renewals[wantHash]
	extra := len(renewals) - 1
	mu.Unlock()
	if n < 1 {
		t.Fatalf("Renew never fired for point %s (map: %v)", wantHash, renewals)
	}
	if extra > 0 {
		t.Errorf("Renew fired for unexpected hashes: %v", renewals)
	}

	// The loop must stop with the point: no renewals accrue afterward.
	time.Sleep(10 * time.Millisecond)
	mu.Lock()
	after := renewals[wantHash]
	mu.Unlock()
	if after != n {
		t.Errorf("renewals kept firing after the sweep finished: %d -> %d", n, after)
	}
}

// TestRenewalDisabledByDefault: a runner without the hook or with a
// zero period never spawns the renewal loop.
func TestRenewalDisabledByDefault(t *testing.T) {
	sw, err := Expand(gridSpec())
	if err != nil {
		t.Fatal(err)
	}
	r := &Runner{Cache: cache.New(0), Renew: func(context.Context, string) {
		t.Error("Renew called with RenewEvery unset")
	}}
	if _, err := r.Run(context.Background(), sw, nil); err != nil {
		t.Fatal(err)
	}
}
