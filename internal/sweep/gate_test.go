package sweep

import (
	"context"
	"sync"
	"testing"
	"time"

	"qla/internal/cache"
)

// TestGateDefersThenAdmits: a point the gate parks re-probes until
// admitted, the deferrals are counted outside the attempt budget, and
// the sweep still completes cleanly.
func TestGateDefersThenAdmits(t *testing.T) {
	sw, err := Expand(gridSpec())
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	deferrals := map[string]int{}
	r := &Runner{
		Cache:     cache.New(0),
		DeferWait: time.Millisecond,
		Gate: func(_ context.Context, hash string) GateDecision {
			mu.Lock()
			defer mu.Unlock()
			if deferrals[hash] < 2 {
				deferrals[hash]++
				return GateDefer
			}
			return GateProceed
		},
	}
	res, err := r.Run(context.Background(), sw, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK != res.Total || res.Failed != 0 {
		t.Fatalf("sweep with deferring gate: ok=%d failed=%d of %d", res.OK, res.Failed, res.Total)
	}
	if res.Deferred != 2*res.Total {
		t.Fatalf("deferred = %d, want %d", res.Deferred, 2*res.Total)
	}
	for _, pr := range res.Points {
		if pr.Deferred != 2 {
			t.Fatalf("point %d deferred = %d, want 2", pr.Index, pr.Deferred)
		}
		if pr.Attempts != 1 {
			t.Fatalf("point %d attempts = %d: deferrals must not consume the retry budget", pr.Index, pr.Attempts)
		}
	}
}

// TestGateSkippedForCachedPoints: a stored point needs no lease — the
// gate is never asked for it.
func TestGateSkippedForCachedPoints(t *testing.T) {
	sw, err := Expand(gridSpec())
	if err != nil {
		t.Fatal(err)
	}
	c := cache.New(0)
	warm := &Runner{Cache: c}
	if _, err := warm.Run(context.Background(), sw, nil); err != nil {
		t.Fatal(err)
	}
	r := &Runner{
		Cache: c,
		Gate: func(context.Context, string) GateDecision {
			t.Error("gate consulted for a cached point")
			return GateProceed
		},
	}
	res, err := r.Run(context.Background(), sw, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cached != res.Total || res.Deferred != 0 {
		t.Fatalf("cached=%d deferred=%d of %d", res.Cached, res.Deferred, res.Total)
	}
}

// TestGateCancelledWhileDeferred: a sweep whose context dies while a
// point is parked aborts instead of spinning on the gate forever.
func TestGateCancelledWhileDeferred(t *testing.T) {
	sw, err := Expand(gridSpec())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	r := &Runner{
		Cache:     cache.New(0),
		DeferWait: time.Hour, // only cancellation can end the park
		Gate: func(context.Context, string) GateDecision {
			cancel()
			return GateDefer
		},
	}
	done := make(chan error, 1)
	go func() {
		_, err := r.Run(ctx, sw, nil)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("fully deferred sweep reported success")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled sweep still parked on the gate")
	}
}

// TestOffsetRotatesDispatch: the offset changes which point starts
// first but not where results land.
func TestOffsetRotatesDispatch(t *testing.T) {
	sw, err := Expand(gridSpec())
	if err != nil {
		t.Fatal(err)
	}
	var order []int
	r := &Runner{
		Concurrency: 1,
		Offset:      5,
		Observer:    func(pr PointResult) { order = append(order, pr.Index) },
	}
	res, err := r.Run(context.Background(), sw, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != len(sw.Points) || order[0] != 5 {
		t.Fatalf("dispatch order = %v, want rotation starting at 5", order)
	}
	for i, pr := range res.Points {
		if pr.Index != i {
			t.Fatalf("result slot %d holds point %d: rotation must not move results", i, pr.Index)
		}
		if pr.Status != "ok" {
			t.Fatalf("point %d status %q", i, pr.Status)
		}
	}
	// Offsets beyond the grid wrap instead of panicking.
	r2 := &Runner{Concurrency: 1, Offset: -7}
	if _, err := r2.Run(context.Background(), sw, nil); err != nil {
		t.Fatal(err)
	}
}
