package sweep

import (
	"context"
	"encoding/json"
	"errors"
	"runtime"
	"sync"
	"time"

	"qla/internal/cache"
	"qla/internal/engine"
	"qla/internal/obs"
	"qla/internal/sched"
)

// defaultCancelGrace is how long a cache-shared point computation may
// keep running after its sweep's context is cancelled, for the sake of
// singleflight followers collapsed onto it.
const defaultCancelGrace = 10 * time.Second

// defaultDeferWait is how long a deferred point waits before probing
// again — long enough that a leased-out point usually lands in the
// shared cache meanwhile, short enough that a dead lessee's expired
// lease is picked up promptly.
const defaultDeferWait = 250 * time.Millisecond

// ErrDeferred is the sentinel a Gate returns a point to the queue with:
// another fleet replica holds the point's lease, so this replica waits
// and re-probes instead of computing a duplicate. Deferrals are not
// attempts — the retry policy never sees them.
var ErrDeferred = errors.New("sweep: point deferred to a fleet peer's lease")

// GateDecision is a Gate's verdict on one point.
type GateDecision int

const (
	// GateProceed admits the point: this replica computes it.
	GateProceed GateDecision = iota
	// GateDefer parks the point: another replica is computing it (or
	// holds its lease), so re-probe the cache later instead.
	GateDefer
)

// GateFunc decides, for a point every cache tier missed, whether this
// runner may compute it now. The serving layer's fleet mode implements
// it with per-point leases; nil admits everything.
type GateFunc func(ctx context.Context, pointHash string) GateDecision

// Runner executes an expanded Sweep's points.
type Runner struct {
	// Engine runs the points (required). Scheduler-equipped engines
	// share their worker budget across points automatically: each
	// point's run acquires its own grant, so a sweep never holds slots
	// it is not using.
	Engine *engine.Engine
	// Cache, when non-nil, serves repeated points from their content
	// address and stores fresh per-point Result bytes — the same cache
	// the HTTP layer fronts /v1/run with, so sweep points and single
	// runs share entries and a cached point's bytes replay verbatim.
	Cache *cache.Cache
	// Concurrency bounds how many points are in flight at once. 0 means
	// GOMAXPROCS when the engine draws workers from a shared scheduler
	// budget (the serving configuration), and 1 otherwise: on an
	// unscheduled engine every concurrent Monte Carlo point would take
	// its full GOMAXPROCS-wide pool, oversubscribing the machine
	// quadratically.
	Concurrency int
	// Retry is the per-point execution policy; the zero value runs each
	// point once with no per-attempt deadline.
	Retry RetryPolicy
	// Observer, when non-nil, is called with every point's final
	// PointResult as it completes (after retries), never concurrently —
	// the serving layer's journal appends per-point completion records
	// through it.
	Observer func(PointResult)
	// Fault is the test-only chaos seam (see FaultHook); nil in
	// production.
	Fault FaultHook
	// CancelGrace overrides how long a cache-shared point computation
	// survives its sweep's cancellation for the sake of collapsed
	// followers (0 = 10s).
	CancelGrace time.Duration
	// Gate, when non-nil, is consulted before a point is freshly
	// computed (a stored or in-flight point needs no permission). A
	// GateDefer parks the point for DeferWait and re-probes — the
	// fleet's work-leasing hook.
	Gate GateFunc
	// DeferWait overrides how long a deferred point waits between
	// probes (0 = 250ms).
	DeferWait time.Duration
	// Offset rotates the order points are dispatched in (still landing
	// by index): replica k of a fleet starts k·(points/replicas) in,
	// so replicas meet in the middle instead of racing point by point.
	Offset int
	// Tenant names the sweep's owner. Every point acquisition runs as
	// this tenant's bulk-class work in the engine's shared scheduler,
	// so a sweep can neither starve interactive requests nor crowd out
	// another tenant's points ("" = the default tenant).
	Tenant string
	// Renew, when non-nil, is called every RenewEvery while a point is
	// actually computing (never for cache hits) — the fleet's
	// mid-compute lease renewal hook, so points that outlive the lease
	// TTL are not re-claimed and duplicated by peers. Failures inside
	// Renew are the hook's own business; the runner ignores them.
	Renew func(ctx context.Context, pointHash string)
	// RenewEvery is the renewal period; <= 0 disables renewal. The
	// serving layer wires lease-ttl/2.
	RenewEvery time.Duration
	// Metrics, when non-nil, records every point's final outcome —
	// duration by outcome, retry attempts, gate deferrals. Shared
	// across sweeps: the serving layer builds one per process.
	Metrics *PointMetrics
}

// PointMetrics aggregates per-point instruments. A nil *PointMetrics
// records nothing.
type PointMetrics struct {
	// Duration is observed once per settled point, labeled by outcome:
	// "ok" (fresh compute), "cached" (any tier replay), or "error".
	Duration *obs.HistogramVec
	// Retries counts extra attempts beyond each point's first.
	Retries *obs.Counter
	// Defers counts gate deferrals (probes parked on a peer's lease).
	Defers *obs.Counter
}

// NewPointMetrics registers the per-point instruments on reg.
func NewPointMetrics(reg *obs.Registry) *PointMetrics {
	return &PointMetrics{
		Duration: reg.HistogramVec("qla_sweep_point_duration_seconds",
			"Wall time of one settled sweep point, by outcome (ok, cached, error).",
			obs.LatencyBuckets, "outcome"),
		Retries: reg.Counter("qla_sweep_point_retries_total",
			"Extra per-point attempts beyond the first."),
		Defers: reg.Counter("qla_sweep_point_defers_total",
			"Point probes parked because a fleet peer held the lease."),
	}
}

func (m *PointMetrics) observe(pr PointResult) {
	if m == nil {
		return
	}
	outcome := pr.Status
	if pr.Cached {
		outcome = "cached"
	}
	m.Duration.With(outcome).Observe(pr.Elapsed.Seconds())
	if pr.Attempts > 1 {
		m.Retries.Add(uint64(pr.Attempts - 1))
	}
	if pr.Deferred > 0 {
		m.Defers.Add(uint64(pr.Deferred))
	}
}

// Progress is a monotonic snapshot of a sweep run, delivered to the
// Run callback after every point completes.
type Progress struct {
	Total  int `json:"total"`
	Done   int `json:"done"`
	Cached int `json:"cached"`
	Failed int `json:"failed"`
	// Retries counts extra per-point attempts spent so far.
	Retries int `json:"retries,omitempty"`
	// Deferred counts gate deferrals spent so far — probes parked
	// because another fleet replica held the point's lease.
	Deferred int `json:"deferred,omitempty"`
}

// PointResult is the outcome of one grid point.
type PointResult struct {
	// Index is the point's position in the sweep's row-major order.
	Index int `json:"index"`
	// Coords are the axis values of the point (one per sweep field).
	Coords []any `json:"coords"`
	// SpecHash is the point Spec's content address.
	SpecHash string `json:"spec_hash"`
	// Status is "ok" or "error".
	Status string `json:"status"`
	// Cached reports whether the result replayed stored bytes.
	Cached bool `json:"cached,omitempty"`
	// Elapsed is the point's wall time (near zero on a cache hit).
	Elapsed time.Duration `json:"elapsed_ns"`
	// Error carries the failure text when Status is "error".
	Error string `json:"error,omitempty"`
	// Attempts is how many tries the point took (1 = no retries).
	Attempts int `json:"attempts,omitempty"`
	// Deferred is how many times the point was parked by the gate
	// (another replica held its lease) before settling.
	Deferred int `json:"deferred,omitempty"`
	// Result holds the marshaled engine Result bytes, verbatim — on a
	// cache hit, byte-identical to the run that populated the entry.
	Result json.RawMessage `json:"result,omitempty"`
}

// Result aggregates a sweep run.
type Result struct {
	// Experiment is the canonical base experiment name.
	Experiment string `json:"experiment"`
	// SweepHash is the canonical SweepSpec's content address (the async
	// job ID under which the serving layer ran it).
	SweepHash string `json:"sweep_hash"`
	// Fields is the coordinate schema: the axis fields in order.
	Fields []string `json:"fields"`
	// Total, OK, Cached and Failed count the points.
	Total  int `json:"total"`
	OK     int `json:"ok"`
	Cached int `json:"cached"`
	Failed int `json:"failed"`
	// Retried counts points that needed more than one attempt;
	// RetryAttempts the total extra attempts spent across them.
	Retried       int `json:"retried,omitempty"`
	RetryAttempts int `json:"retry_attempts,omitempty"`
	// Deferred totals the gate deferrals spent across all points.
	Deferred int `json:"deferred,omitempty"`
	// Elapsed is the whole sweep's wall time.
	Elapsed time.Duration `json:"elapsed_ns"`
	// Points holds every point in row-major sweep order.
	Points []PointResult `json:"points"`
}

// Run executes every point of sw, honoring ctx: per-point failures are
// recorded in the Result (Status "error") and the sweep continues, but
// a cancelled or expired context aborts the whole run with its error.
// progress, when non-nil, is called after each point completes with a
// monotonic snapshot (never concurrently). The aggregated Result is
// deterministic at any Concurrency: points land by index, and each
// point's payload is bit-identical at any engine parallelism.
func (r *Runner) Run(ctx context.Context, sw *Sweep, progress func(Progress)) (*Result, error) {
	eng := r.Engine
	if eng == nil {
		eng = engine.New()
	}
	// Every point acquisition below is this tenant's bulk-class work;
	// the identity rides the context through the cache's compute
	// closures (context.WithoutCancel keeps values) into the engine's
	// scheduler acquisitions.
	ctx = sched.WithIdentity(ctx, sched.Identity{Tenant: r.Tenant, Class: sched.ClassBulk})
	workers := r.Concurrency
	if workers <= 0 {
		if eng.HasScheduler() {
			workers = runtime.GOMAXPROCS(0)
		} else {
			workers = 1
		}
	}
	if workers > len(sw.Points) {
		workers = len(sw.Points)
	}

	started := time.Now()
	res := &Result{
		Experiment: sw.Experiment,
		SweepHash:  sw.Hash,
		Fields:     sw.Fields,
		Total:      len(sw.Points),
		Points:     make([]PointResult, len(sw.Points)),
	}

	var (
		mu   sync.Mutex // guards the counters and the progress callback
		wg   sync.WaitGroup
		next = make(chan int)
	)
	finish := func(pr PointResult) {
		mu.Lock()
		res.Points[pr.Index] = pr
		if pr.Status == "ok" {
			res.OK++
		} else {
			res.Failed++
		}
		if pr.Cached {
			res.Cached++
		}
		if pr.Attempts > 1 {
			res.Retried++
			res.RetryAttempts += pr.Attempts - 1
		}
		res.Deferred += pr.Deferred
		r.Metrics.observe(pr)
		if r.Observer != nil {
			r.Observer(pr)
		}
		if progress != nil {
			progress(Progress{Total: res.Total, Done: res.OK + res.Failed, Cached: res.Cached, Failed: res.Failed, Retries: res.RetryAttempts, Deferred: res.Deferred})
		}
		mu.Unlock()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				finish(r.runPoint(ctx, eng, sw, i))
			}
		}()
	}
	// Rotated dispatch: fleet replicas start at different offsets so
	// they drain the grid from different ends instead of contending for
	// every point's lease in lockstep. Results still land by index.
	offset := r.Offset
	if n := len(sw.Points); n > 0 {
		offset = ((offset % n) + n) % n
	}
	for k := range sw.Points {
		if ctx.Err() != nil {
			break
		}
		next <- (k + offset) % len(sw.Points)
	}
	close(next)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		// A deadline that fires after the last point already landed
		// cleanly has cost nothing — don't throw away a fully computed
		// sweep. Failed points disqualify the escape: when the deadline
		// itself killed in-flight points, they are "complete" only as
		// errors, and that run must report the deadline, not success.
		// An explicit cancel stays a cancel even at 100%: the caller
		// asked for the job's death, not its result.
		clean := res.OK == res.Total
		if !(clean && errors.Is(err, context.DeadlineExceeded)) {
			return nil, err
		}
	}
	res.Elapsed = time.Since(started)
	return res, nil
}

// runPoint executes one point under the retry policy: attempts run
// until one succeeds, the attempts are exhausted, or the failure
// classifies as non-retryable. Between attempts the worker sleeps the
// policy's jittered backoff (aborted by sweep cancellation). Gate
// deferrals sit outside the attempt count entirely: a parked point
// re-probes after DeferWait for as long as the sweep context lives —
// lease expiry guarantees an abandoned point eventually admits.
func (r *Runner) runPoint(ctx context.Context, eng *engine.Engine, sw *Sweep, i int) PointResult {
	pol := r.Retry.normalized()
	wait := r.DeferWait
	if wait <= 0 {
		wait = defaultDeferWait
	}
	deferred := 0
	for attempt := 1; ; attempt++ {
		pr, err := r.runPointOnce(ctx, eng, sw, i)
		pr.Deferred = deferred
		if errors.Is(err, ErrDeferred) {
			deferred++
			pr.Deferred = deferred
			pr.Attempts = attempt
			select {
			case <-time.After(wait):
				attempt--
				continue
			case <-ctx.Done():
				return pr
			}
		}
		pr.Attempts = attempt
		if err == nil || attempt >= pol.MaxAttempts || !retryable(ctx, err) {
			return pr
		}
		select {
		case <-time.After(pol.backoff(attempt, pr.SpecHash)):
		case <-ctx.Done():
			return pr
		}
	}
}

// runPointOnce executes one attempt of one point, through the cache
// when one is wired, under the policy's per-attempt deadline. Panics
// escaping the fault hook are converted to retryable errors (the
// engine converts its own experiment panics the same way).
func (r *Runner) runPointOnce(parent context.Context, eng *engine.Engine, sw *Sweep, i int) (pr PointResult, err error) {
	pt := sw.Points[i]
	pr = PointResult{
		Index:    i,
		Coords:   pt.Coords,
		SpecHash: pt.Canonical.Hash,
	}
	ctx := parent
	if pol := r.Retry.normalized(); pol.PointTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(parent, pol.PointTimeout)
		defer cancel()
	}
	started := time.Now()
	defer func() {
		if rec := recover(); rec != nil {
			err = recoverToError(rec)
		}
		pr.Elapsed = time.Since(started)
		if err != nil {
			pr.Status = "error"
			pr.Error = err.Error()
			pr.Cached = false
			pr.Result = nil
		}
	}()
	if r.Fault != nil {
		if err = r.Fault(ctx, pt.Canonical.Hash); err != nil {
			return pr, err
		}
	}
	// The gate is asked only when the point would actually compute: a
	// stored value or a joinable in-flight computation needs no lease.
	// The check runs before GetOrCompute, never inside it — a deferral
	// must not resolve the singleflight with an error that concurrent
	// /v1/run followers on the same Spec would receive. The Contains →
	// GetOrCompute gap is benign here: a vanished entry means one
	// duplicate computation, not a correctness failure.
	if r.Gate != nil {
		admit := true
		if r.Cache != nil {
			stored, inflight := r.Cache.Contains(pt.Canonical.Hash)
			admit = !stored && !inflight
		}
		if admit && r.Gate(ctx, pt.Canonical.Hash) == GateDefer {
			return pr, ErrDeferred
		}
	}
	var (
		body []byte
		hit  bool
	)
	if r.Cache != nil {
		grace := r.CancelGrace
		if grace <= 0 {
			grace = defaultCancelGrace
		}
		// Through a shared cache the computation may have singleflight
		// followers from other callers (a concurrent /v1/run on the same
		// Spec), so it must not die instantly with this attempt's context —
		// the detachment serve.handleRun applies. But fully detached
		// work would keep holding the shared scheduler budget until the
		// sweep deadline after an explicit cancel, so cancellation
		// propagates after a grace window: long enough for a collapsed
		// follower's point to finish in the common case, short enough
		// that a cancelled runaway sweep actually stops.
		body, hit, err = r.Cache.GetOrCompute(ctx, pt.Canonical.Hash, func() ([]byte, error) {
			runCtx, cancel := context.WithCancel(context.WithoutCancel(ctx))
			defer cancel()
			if deadline, ok := ctx.Deadline(); ok {
				runCtx, cancel = context.WithDeadline(runCtx, deadline)
				defer cancel()
			}
			stop := context.AfterFunc(ctx, func() {
				timer := time.AfterFunc(grace, cancel)
				// The compute's own deadline caps the timer's useful
				// life; letting it fire against a finished context is a
				// no-op, so no cleanup is needed beyond cancel itself.
				_ = timer
			})
			defer stop()
			stopRenew := r.startRenewal(runCtx, pt.Canonical.Hash)
			defer stopRenew()
			out, err := eng.RunCanonical(runCtx, pt.Canonical)
			if err != nil {
				return nil, err
			}
			return json.Marshal(out)
		})
	} else {
		stopRenew := r.startRenewal(ctx, pt.Canonical.Hash)
		var out engine.Result
		if out, err = eng.RunCanonical(ctx, pt.Canonical); err == nil {
			body, err = json.Marshal(out)
		}
		stopRenew()
	}
	pr.Cached = hit
	if err != nil {
		return pr, err
	}
	pr.Status = "ok"
	pr.Result = body
	return pr, nil
}

// startRenewal arms the mid-compute lease renewal loop for one point:
// Renew fires every RenewEvery until stop is called or ctx dies. A
// no-op (and no goroutine) when renewal is not configured.
func (r *Runner) startRenewal(ctx context.Context, pointHash string) (stop func()) {
	if r.Renew == nil || r.RenewEvery <= 0 {
		return func() {}
	}
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(r.RenewEvery)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-ctx.Done():
				return
			case <-t.C:
				r.Renew(ctx, pointHash)
			}
		}
	}()
	return func() { close(done) }
}
