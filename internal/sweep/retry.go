package sweep

// Per-point execution policy: the QLA paper's premise is computing
// through unreliable components, and at serving scale the sweep runner
// meets the software equivalents — a wedged engine run, a panicking
// experiment body, a transient failure. The policy bounds each
// attempt with a deadline, retries classified-transient failures with
// jittered exponential backoff, and refuses to retry what retrying
// cannot fix: a cancelled sweep, or an error that declares itself
// permanent.

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"time"
)

// RetryPolicy bounds one grid point's execution. The zero value means
// a single attempt with no per-attempt deadline — exactly the
// pre-policy behavior.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per point, the first
	// included (<= 0 means 1: no retries).
	MaxAttempts int
	// PointTimeout is the per-attempt deadline (0 = none; the sweep
	// context's own deadline still applies). An attempt that exceeds it
	// is cancelled and classified transient — a hung point is retried,
	// not waited on forever.
	PointTimeout time.Duration
	// BaseBackoff is the wait before the first retry (0 = 100ms); each
	// further retry doubles it, capped at MaxBackoff (0 = 5s). The
	// actual wait is jittered to [50%, 100%] of the exponential value,
	// deterministically per (point, attempt) so tests can pin timing.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
}

// normalized resolves the policy's zero values.
func (p RetryPolicy) normalized() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 1
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 100 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 5 * time.Second
	}
	return p
}

// backoff returns the jittered wait before retry number attempt (1 =
// the wait after the first failed attempt).
func (p RetryPolicy) backoff(attempt int, pointHash string) time.Duration {
	d := p.BaseBackoff
	for i := 1; i < attempt && d < p.MaxBackoff; i++ {
		d *= 2
	}
	if d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	// Deterministic jitter in [d/2, d): sweeps hammering a shared
	// backend desynchronize, and a fixed (point, attempt) pair always
	// waits the same time, so retry timing is reproducible.
	h := fnv.New64a()
	fmt.Fprintf(h, "%s#%d", pointHash, attempt)
	frac := float64(h.Sum64()%1024) / 1024
	return d/2 + time.Duration(frac*float64(d/2))
}

// FaultHook is the test-only chaos seam: when non-nil it runs before
// every point attempt with the point's spec hash, and its error (or
// panic) stands in for the attempt. internal/faultinject builds these;
// production runners leave the field nil.
type FaultHook func(ctx context.Context, specHash string) error

// permanent is the classification interface errors may implement to
// opt out of retries (faultinject.Error does).
type permanent interface{ Permanent() bool }

// retryable classifies a failed attempt. Not retryable: the sweep's
// own context ending (cancellation and sweep-deadline failures must
// surface immediately), a context.Canceled bubbling from anywhere
// (someone asked for a stop; retrying overrides them), and errors
// declaring themselves Permanent (spec-shaped failures that every
// attempt reproduces — note invalid specs normally never get this far:
// Expand canonicalizes and validates every point before a sweep is
// admitted). Everything else — per-attempt timeouts, engine panics
// (already converted to errors), transient failures — retries.
func retryable(ctx context.Context, err error) bool {
	if err == nil || ctx.Err() != nil {
		return false
	}
	var p permanent
	if errors.As(err, &p) && p.Permanent() {
		return false
	}
	return !errors.Is(err, context.Canceled)
}

// recoverToError converts a panic from a fault hook or a non-engine
// seam into an ordinary error so the retry loop can classify it. The
// engine already guards its own experiment bodies the same way.
func recoverToError(r any) error {
	return fmt.Errorf("sweep: point attempt panicked: %v", r)
}
