// Package sweep fans one parameterized engine Spec out over a grid of
// machine configurations and parameter values — the evaluation shape of
// the QLA paper's Figures 8–10 and Table 4 (ADCR and recursion-level
// tradeoffs across machine configurations) and of the memory-hierarchy
// follow-up (quant-ph/0604070), which sweeps tech-params × cache-level
// × bandwidth grids.
//
// A SweepSpec is a base Spec plus axes. Expand resolves it
// deterministically into per-point canonical Specs, each carrying its
// own content address, so the serving layer's result cache applies
// point by point: re-running a sweep that shares points with earlier
// runs (or with single /v1/run requests) recomputes nothing. The
// expansion itself is content-addressed too — the hex SHA-256 of the
// canonical SweepSpec encoding — and that hash doubles as the async
// job ID in internal/jobs.
//
// Runner executes the points on a shared Engine (points draw worker
// slots from the engine's scheduler individually; the runner only
// bounds how many points are in flight), aggregating per-point
// status/timing into a Result with table/CSV views. Fixed-seed engine
// results are bit-identical at any parallelism, so a sweep's per-point
// payloads are too, at any Runner concurrency.
package sweep

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"maps"
	"os"
	"strings"

	"qla/internal/engine"
)

// Spec is the JSON-(de)serializable description of one sweep: a base
// engine Spec plus the axes that vary it.
type Spec struct {
	// Base is the point template; every axis assignment is applied over
	// it. Aliases and omitted defaults are fine — points canonicalize.
	Base engine.Spec `json:"base"`
	// Axes are the grid dimensions, expanded row-major (the last axis
	// varies fastest). At least one axis is required.
	Axes []Axis `json:"axes"`
}

// Axis is one grid dimension.
type Axis struct {
	// Field names what the axis varies: "machine.param_set",
	// "machine.level", "machine.bandwidth", "machine.logical_qubits",
	// or "params.<name>" for any parameter the base experiment declares.
	Field string `json:"field"`
	// Values are the grid coordinates, in sweep order.
	Values []any `json:"values"`
}

// Expansion bounds: enough for every grid in the paper and the
// follow-up (Table 4 is ≤ a few dozen points) with two orders of
// margin, and small enough that one malicious SweepSpec cannot wedge
// the serving layer.
const (
	MaxAxes   = 6
	MaxPoints = 4096
)

// Sweep is an expanded SweepSpec: the canonical spec with its content
// address, plus every grid point as a canonical engine Spec.
type Sweep struct {
	// Spec is the canonical sweep: base canonicalized, axis values
	// coerced to their declared kinds.
	Spec Spec
	// JSON is the byte-stable canonical encoding; Hash its hex SHA-256
	// content address (also the async job ID).
	JSON []byte
	Hash string
	// Experiment is the canonical base experiment name.
	Experiment string
	// Fields lists the axis fields in order (the coordinate schema).
	Fields []string
	// Points holds the expanded grid in row-major order.
	Points []Point
}

// Point is one expanded grid point.
type Point struct {
	// Coords are the axis values of this point, one per axis, coerced.
	Coords []any
	// Canonical is the point's canonical Spec with encoding and hash.
	Canonical engine.Canonical
}

// DecodeSpec parses a JSON SweepSpec strictly, mirroring
// engine.DecodeSpec: unknown fields and trailing data are rejected, and
// malformed input of any shape returns an error, never panics
// (FuzzSweepDecode enforces that).
func DecodeSpec(raw []byte) (Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("sweep: invalid sweep JSON: %w", err)
	}
	if dec.More() {
		return Spec{}, fmt.Errorf("sweep: trailing data after sweep JSON")
	}
	return s, nil
}

// ReadFile parses a JSON SweepSpec from path; "-" reads standard input.
func ReadFile(path string) (Spec, error) {
	var (
		raw []byte
		err error
	)
	if path == "-" {
		raw, err = io.ReadAll(os.Stdin)
	} else {
		raw, err = os.ReadFile(path)
	}
	if err != nil {
		return Spec{}, err
	}
	s, err := DecodeSpec(raw)
	if err != nil {
		return Spec{}, fmt.Errorf("parsing sweep %s: %w", path, err)
	}
	return s, nil
}

// Expand validates s and resolves it into its grid points. The
// expansion is fully deterministic: the same SweepSpec (under any
// equivalent spelling — base aliases, omitted defaults, 2 vs 2.0 axis
// values) yields the same canonical encoding, the same Hash, and the
// same per-point canonical Specs and hashes, in the same order.
// Distinct axis assignments that canonicalize to the same point (say,
// machine.level values 0 and 2, where 0 means the default 2) are
// rejected rather than silently collapsed.
func Expand(s Spec) (*Sweep, error) {
	base, err := engine.Canonicalize(s.Base)
	if err != nil {
		return nil, fmt.Errorf("sweep: base spec: %w", err)
	}
	exp, ok := engine.Lookup(base.Experiment)
	if !ok {
		return nil, fmt.Errorf("sweep: base experiment %q vanished from the registry", base.Experiment)
	}
	if base.Experiment == "machine-sweep" {
		// A sweep of sweeps would multiply grids: each of up to
		// MaxPoints points would itself fan out up to MaxPoints runs,
		// amplifying one request far past the documented bound. The
		// axes ARE the sweep; nesting adds nothing but blast radius.
		return nil, fmt.Errorf("sweep: base experiment machine-sweep cannot be swept (axes already express the grid)")
	}
	if len(s.Axes) == 0 {
		return nil, fmt.Errorf("sweep: no axes (a sweep needs at least one)")
	}
	if len(s.Axes) > MaxAxes {
		return nil, fmt.Errorf("sweep: %d axes exceeds the maximum %d", len(s.Axes), MaxAxes)
	}

	// Canonicalize the axes: coerce every value to its declared kind and
	// reject duplicates within an axis (they would expand to duplicate
	// points), unknown fields, and empty value lists.
	canonAxes := make([]Axis, len(s.Axes))
	fields := make([]string, len(s.Axes))
	seenField := map[string]bool{}
	total := 1
	for i, ax := range s.Axes {
		if seenField[ax.Field] {
			return nil, fmt.Errorf("sweep: duplicate axis field %q", ax.Field)
		}
		seenField[ax.Field] = true
		if len(ax.Values) == 0 {
			return nil, fmt.Errorf("sweep: axis %q has no values", ax.Field)
		}
		kind, err := axisKind(exp, ax.Field)
		if err != nil {
			return nil, err
		}
		vals := make([]any, len(ax.Values))
		seenVal := map[string]bool{}
		for j, v := range ax.Values {
			cv, err := engine.CoerceValue(kind, v)
			if err != nil {
				return nil, fmt.Errorf("sweep: axis %q value %d: %w", ax.Field, j, err)
			}
			key, err := json.Marshal(cv)
			if err != nil {
				return nil, fmt.Errorf("sweep: axis %q value %d: %w", ax.Field, j, err)
			}
			if seenVal[string(key)] {
				return nil, fmt.Errorf("sweep: axis %q repeats value %s", ax.Field, key)
			}
			seenVal[string(key)] = true
			vals[j] = cv
		}
		canonAxes[i] = Axis{Field: ax.Field, Values: vals}
		fields[i] = ax.Field
		if total > MaxPoints/len(vals) {
			return nil, fmt.Errorf("sweep: grid exceeds the maximum %d points", MaxPoints)
		}
		total *= len(vals)
	}

	canon := Spec{Base: base, Axes: canonAxes}
	raw, err := json.Marshal(canon)
	if err != nil {
		return nil, err
	}
	sw := &Sweep{
		Spec:       canon,
		JSON:       raw,
		Hash:       engine.HashBytes(raw),
		Experiment: base.Experiment,
		Fields:     fields,
		Points:     make([]Point, 0, total),
	}

	// Row-major enumeration, last axis fastest.
	seenPoint := map[string]int{}
	coords := make([]any, len(canonAxes))
	idx := make([]int, len(canonAxes))
	for n := 0; n < total; n++ {
		rem := n
		for i := len(canonAxes) - 1; i >= 0; i-- {
			idx[i] = rem % len(canonAxes[i].Values)
			rem /= len(canonAxes[i].Values)
		}
		spec := base
		spec.Params = maps.Clone(base.Params)
		if spec.Params == nil {
			spec.Params = engine.Params{}
		}
		for i, ax := range canonAxes {
			coords[i] = ax.Values[idx[i]]
			if err := applyAxis(&spec, ax.Field, coords[i]); err != nil {
				return nil, fmt.Errorf("sweep: point %d (%s): %w", n, coordsString(fields, coords), err)
			}
		}
		c, err := engine.MakeCanonical(spec)
		if err != nil {
			return nil, fmt.Errorf("sweep: point %d (%s): %w", n, coordsString(fields, coords), err)
		}
		if prev, dup := seenPoint[c.Hash]; dup {
			return nil, fmt.Errorf("sweep: points %d and %d (%s) canonicalize to the same run %s",
				prev, n, coordsString(fields, coords), c.Hash[:12])
		}
		seenPoint[c.Hash] = n
		sw.Points = append(sw.Points, Point{Coords: append([]any(nil), coords...), Canonical: c})
	}
	return sw, nil
}

// axisKind resolves the declared kind of an axis field, validating the
// field name against the machine schema or the experiment's parameter
// declarations.
func axisKind(exp *engine.Experiment, field string) (engine.Kind, error) {
	if name, ok := strings.CutPrefix(field, "params."); ok {
		def, ok := exp.Param(name)
		if !ok {
			return 0, fmt.Errorf("sweep: axis %q: experiment %q declares no parameter %q", field, exp.Name, name)
		}
		return def.Kind, nil
	}
	switch field {
	case "machine.param_set":
		return engine.Text, nil
	case "machine.level", "machine.bandwidth", "machine.logical_qubits":
		return engine.Int, nil
	}
	return 0, fmt.Errorf("sweep: unknown axis field %q (want machine.param_set, machine.level, machine.bandwidth, machine.logical_qubits, or params.<name>)", field)
}

// applyAxis writes one coerced axis value into the point spec.
func applyAxis(spec *engine.Spec, field string, v any) error {
	if name, ok := strings.CutPrefix(field, "params."); ok {
		spec.Params[name] = v
		return nil
	}
	switch field {
	case "machine.param_set":
		spec.Machine.ParamSet = v.(string)
	case "machine.level":
		spec.Machine.Level = v.(int)
	case "machine.bandwidth":
		spec.Machine.Bandwidth = v.(int)
	case "machine.logical_qubits":
		spec.Machine.LogicalQubits = v.(int)
	default:
		return fmt.Errorf("unknown axis field %q", field)
	}
	return nil
}

// coordsString renders one point's coordinates for error text and the
// table view: "machine.level=2, params.trials=1000".
func coordsString(fields []string, coords []any) string {
	var sb strings.Builder
	for i, f := range fields {
		if i > 0 {
			sb.WriteString(", ")
		}
		raw, err := json.Marshal(coords[i])
		if err != nil {
			raw = []byte(fmt.Sprintf("%v", coords[i]))
		}
		fmt.Fprintf(&sb, "%s=%s", f, raw)
	}
	return sb.String()
}
