package sweep

// Compact human views of a sweep Result: an aligned table for
// terminals and CSV for downstream analysis (the follow-up paper's
// grids are exactly this shape). Both render one row per point with
// its coordinates, status, cache provenance and timing; the full
// per-point Result payloads stay in the JSON form.

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"text/tabwriter"
	"time"
)

// WriteCSV renders the sweep as CSV: a header row of
// index,<fields...>,status,cached,elapsed_ms,spec_hash,error followed
// by one row per point in sweep order.
func (r *Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append([]string{"index"}, r.Fields...)
	header = append(header, "status", "cached", "elapsed_ms", "spec_hash", "error")
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, pt := range r.Points {
		row := []string{strconv.Itoa(pt.Index)}
		for _, c := range pt.Coords {
			row = append(row, coordString(c))
		}
		row = append(row,
			pt.Status,
			strconv.FormatBool(pt.Cached),
			formatMS(pt.Elapsed),
			pt.SpecHash,
			pt.Error,
		)
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTable renders the sweep as an aligned text table with a summary
// line.
func (r *Result) WriteTable(w io.Writer) error {
	fmt.Fprintf(w, "sweep %s over %s: %d points, %d ok (%d cached), %d failed, %.2fs\n",
		shortHash(r.SweepHash), r.Experiment, r.Total, r.OK, r.Cached, r.Failed, r.Elapsed.Seconds())
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "idx")
	for _, f := range r.Fields {
		fmt.Fprintf(tw, "\t%s", f)
	}
	fmt.Fprint(tw, "\tstatus\tcached\tms\tspec\n")
	for _, pt := range r.Points {
		fmt.Fprintf(tw, "%d", pt.Index)
		for _, c := range pt.Coords {
			fmt.Fprintf(tw, "\t%s", coordString(c))
		}
		status := pt.Status
		if pt.Error != "" {
			status = "error: " + pt.Error
		}
		fmt.Fprintf(tw, "\t%s\t%v\t%s\t%s\n", status, pt.Cached, formatMS(pt.Elapsed), shortHash(pt.SpecHash))
	}
	return tw.Flush()
}

// coordString renders one coordinate compactly: strings bare (CSV and
// the table add their own quoting where needed), everything else as
// JSON so numbers and lists stay unambiguous.
func coordString(v any) string {
	if s, ok := v.(string); ok {
		return s
	}
	raw, err := json.Marshal(v)
	if err != nil {
		return fmt.Sprintf("%v", v)
	}
	return string(raw)
}

func formatMS(d time.Duration) string {
	return strconv.FormatFloat(float64(d)/float64(time.Millisecond), 'f', 3, 64)
}

func shortHash(h string) string {
	if len(h) > 12 {
		return h[:12]
	}
	return h
}
