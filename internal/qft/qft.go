// Package qft builds the quantum Fourier transform circuits that close
// Shor's algorithm (Section 5: "A second part is the quantum Fourier
// transform (QFT), which finds the period of f(x) from the results
// previously computed").
//
// The QFT's controlled-phase rotations are outside the Clifford group,
// so ARQ's stabilizer backend cannot execute them — that is exactly why
// the paper (and internal/shor) charge the QFT analytically as a banded
// (approximate) transform of depth 2N·(log2(2N)+2) EC steps. This
// package makes that charge inspectable: it generates the exact and
// banded QFT gate lists, measures their size and ASAP depth, bounds the
// banding error, and verifies the constructions against the DFT matrix
// on a small dense statevector backend (exponential, used only at
// verification widths).
package qft

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Kind enumerates QFT circuit gates.
type Kind int

const (
	// Hadamard on Q0.
	Hadamard Kind = iota
	// CPhase applies diag(1,1,1,e^{2πi/2^K}) to (Q0=control, Q1=target).
	CPhase
	// Swap exchanges Q0 and Q1 (the final bit-reversal).
	Swap
)

// Gate is one QFT circuit element.
type Gate struct {
	Kind   Kind
	Q0, Q1 int
	// K is the rotation order for CPhase: phase 2π/2^K.
	K int
}

// Circuit is a QFT gate list over n qubits. Wire 0 holds the most
// significant input bit.
type Circuit struct {
	N     int
	Gates []Gate
	// Band is the rotation cutoff (0 = exact): rotations of order
	// beyond Band are omitted.
	Band int
}

// Exact builds the textbook QFT: for each wire a Hadamard followed by
// controlled rotations from every lower-significance wire, then the
// bit-reversal swaps.
func Exact(n int) *Circuit { return Banded(n, 0) }

// Banded builds the approximate QFT that drops rotations of order
// greater than band (band 0 means exact). Coppersmith's bound puts the
// operator error at O(n·2^{-band}), which is why logarithmic bands
// suffice — the assumption behind the paper's QFT cost model.
func Banded(n, band int) *Circuit {
	if n <= 0 {
		panic(fmt.Sprintf("qft: non-positive width %d", n))
	}
	if band < 0 {
		panic(fmt.Sprintf("qft: negative band %d", band))
	}
	c := &Circuit{N: n, Band: band}
	for i := 0; i < n; i++ {
		c.Gates = append(c.Gates, Gate{Kind: Hadamard, Q0: i})
		for j := i + 1; j < n; j++ {
			k := j - i + 1
			if band > 0 && k > band {
				break
			}
			c.Gates = append(c.Gates, Gate{Kind: CPhase, Q0: j, Q1: i, K: k})
		}
	}
	for i := 0; i < n/2; i++ {
		c.Gates = append(c.Gates, Gate{Kind: Swap, Q0: i, Q1: n - 1 - i})
	}
	return c
}

// Counts tallies the circuit by gate kind.
type Counts struct {
	Hadamard, CPhase, Swap int
}

// Total returns the total gate count.
func (k Counts) Total() int { return k.Hadamard + k.CPhase + k.Swap }

// Counts tallies the gate list.
func (c *Circuit) Counts() Counts {
	var k Counts
	for _, g := range c.Gates {
		switch g.Kind {
		case Hadamard:
			k.Hadamard++
		case CPhase:
			k.CPhase++
		default:
			k.Swap++
		}
	}
	return k
}

// Depth returns the ASAP depth counting every gate as one time step —
// the unit the paper's EC-step QFT charge uses (each logical gate costs
// one error-correction step).
func (c *Circuit) Depth() int {
	avail := make([]int, c.N)
	max := 0
	for _, g := range c.Gates {
		start := avail[g.Q0]
		two := g.Kind != Hadamard
		if two && avail[g.Q1] > start {
			start = avail[g.Q1]
		}
		end := start + 1
		avail[g.Q0] = end
		if two {
			avail[g.Q1] = end
		}
		if end > max {
			max = end
		}
	}
	return max
}

// --- dense verification backend ------------------------------------------

// maxVerifyWidth bounds the exponential statevector verifier.
const maxVerifyWidth = 12

// Run applies the circuit to basis state |x⟩ and returns the output
// amplitudes (wire 0 = most significant bit). Verification widths only.
func (c *Circuit) Run(x uint64) []complex128 {
	if c.N > maxVerifyWidth {
		panic(fmt.Sprintf("qft: width %d beyond the dense verifier's limit %d", c.N, maxVerifyWidth))
	}
	dim := 1 << uint(c.N)
	state := make([]complex128, dim)
	state[x] = 1
	bit := func(idx uint64, q int) uint64 {
		// Wire 0 is the most significant bit of the index.
		return idx >> uint(c.N-1-q) & 1
	}
	for _, g := range c.Gates {
		switch g.Kind {
		case Hadamard:
			inv := complex(1/math.Sqrt2, 0)
			next := make([]complex128, dim)
			for idx := uint64(0); idx < uint64(dim); idx++ {
				if state[idx] == 0 {
					continue
				}
				flip := idx ^ (1 << uint(c.N-1-g.Q0))
				if bit(idx, g.Q0) == 0 {
					next[idx] += inv * state[idx]
					next[flip] += inv * state[idx]
				} else {
					next[flip] += inv * state[idx]
					next[idx] -= inv * state[idx]
				}
			}
			state = next
		case CPhase:
			phase := cmplx.Exp(complex(0, 2*math.Pi/math.Pow(2, float64(g.K))))
			for idx := uint64(0); idx < uint64(dim); idx++ {
				if bit(idx, g.Q0) == 1 && bit(idx, g.Q1) == 1 {
					state[idx] *= phase
				}
			}
		case Swap:
			next := make([]complex128, dim)
			for idx := uint64(0); idx < uint64(dim); idx++ {
				b0, b1 := bit(idx, g.Q0), bit(idx, g.Q1)
				to := idx
				if b0 != b1 {
					to = idx ^ (1 << uint(c.N-1-g.Q0)) ^ (1 << uint(c.N-1-g.Q1))
				}
				next[to] = state[idx]
			}
			state = next
		}
	}
	return state
}

// Reference returns the exact DFT amplitudes for basis input |x⟩:
// amplitude(y) = e^{2πi·x·y/2^n} / √(2^n).
func Reference(n int, x uint64) []complex128 {
	dim := 1 << uint(n)
	out := make([]complex128, dim)
	norm := complex(1/math.Sqrt(float64(dim)), 0)
	for y := uint64(0); y < uint64(dim); y++ {
		angle := 2 * math.Pi * float64(x) * float64(y) / float64(dim)
		out[y] = norm * cmplx.Exp(complex(0, angle))
	}
	return out
}

// MaxBasisError returns the largest L2 distance between the circuit's
// output and the exact DFT over every basis input — zero (to numerical
// precision) for the exact circuit, O(n·2^{-band}) for banded ones.
func (c *Circuit) MaxBasisError() float64 {
	worst := 0.0
	for x := uint64(0); x < 1<<uint(c.N); x++ {
		got := c.Run(x)
		want := Reference(c.N, x)
		sum := 0.0
		for i := range got {
			d := got[i] - want[i]
			sum += real(d)*real(d) + imag(d)*imag(d)
		}
		if e := math.Sqrt(sum); e > worst {
			worst = e
		}
	}
	return worst
}

// PaperBand is the banding the paper's EC-step model assumes for the
// final QFT on a 2n-bit register: log2(2n)+2.
func PaperBand(nModulus int) int {
	b := 2
	for 1<<uint(b-2) < 2*nModulus {
		b++
	}
	return b
}
