package qft

import (
	"math"
	"testing"

	"qla/internal/shor"
)

// TestExactMatchesDFT verifies the exact QFT circuit against the DFT
// matrix on every basis state for widths 1..6.
func TestExactMatchesDFT(t *testing.T) {
	for n := 1; n <= 6; n++ {
		c := Exact(n)
		if err := c.MaxBasisError(); err > 1e-12 {
			t.Fatalf("n=%d: exact QFT error %g", n, err)
		}
	}
}

// TestBandedErrorShrinksWithBand: Coppersmith's bound — widening the
// band reduces the approximation error toward zero.
func TestBandedErrorShrinksWithBand(t *testing.T) {
	n := 6
	prev := math.Inf(1)
	for band := 2; band <= n+1; band++ {
		e := Banded(n, band).MaxBasisError()
		if e > prev+1e-12 {
			t.Fatalf("band %d: error %g grew from %g", band, e, prev)
		}
		prev = e
	}
	// Full band equals exact.
	if e := Banded(n, n+1).MaxBasisError(); e > 1e-12 {
		t.Fatalf("full band not exact: %g", e)
	}
	// A log-width band is already accurate to a few percent.
	if e := Banded(n, 5).MaxBasisError(); e > 0.2 {
		t.Fatalf("log band too lossy: %g", e)
	}
}

func TestCountsClosedForm(t *testing.T) {
	for _, n := range []int{1, 2, 5, 8, 16} {
		c := Exact(n)
		k := c.Counts()
		if k.Hadamard != n {
			t.Fatalf("n=%d: H count %d", n, k.Hadamard)
		}
		if k.CPhase != n*(n-1)/2 {
			t.Fatalf("n=%d: CPhase count %d, want %d", n, k.CPhase, n*(n-1)/2)
		}
		if k.Swap != n/2 {
			t.Fatalf("n=%d: swap count %d", n, k.Swap)
		}
	}
}

// TestBandedCountsLinear: banding makes the gate count linear in n at
// fixed band.
func TestBandedCountsLinear(t *testing.T) {
	band := 6
	c32 := Banded(32, band).Counts().Total()
	c64 := Banded(64, band).Counts().Total()
	ratio := float64(c64) / float64(c32)
	if ratio < 1.8 || ratio > 2.3 {
		t.Fatalf("banded growth ratio %.2f, want ~2 (linear)", ratio)
	}
	// Exact growth is quadratic by contrast.
	e32 := Exact(32).Counts().Total()
	e64 := Exact(64).Counts().Total()
	if r := float64(e64) / float64(e32); r < 3.2 {
		t.Fatalf("exact growth ratio %.2f, want ~4 (quadratic)", r)
	}
}

// TestPaperQFTChargeMatchesCircuit ties the gate-level banded QFT to
// the paper's EC-step charge 2N·(log2(2N)+2): the model prices every
// gate of the banded transform on a 2N-qubit register at one EC step,
// so the circuit's gate count must land within a small factor of it.
func TestPaperQFTChargeMatchesCircuit(t *testing.T) {
	for _, n := range []int{32, 128, 512} {
		band := PaperBand(n)
		c := Banded(2*n, band)
		total := int64(c.Counts().Total())
		model := shor.QFTSteps(n)
		ratio := float64(total) / float64(model)
		if ratio < 0.7 || ratio > 1.4 {
			t.Fatalf("n=%d: circuit gates %d vs model %d (ratio %.2f)", n, total, model, ratio)
		}
		// ASAP depth is below the serial charge (the model is an
		// upper bound per the SIMD laser constraint).
		if d := c.Depth(); int64(d) > model {
			t.Fatalf("n=%d: depth %d exceeds the model's serial charge %d", n, d, model)
		}
	}
}

func TestPaperBand(t *testing.T) {
	if b := PaperBand(128); b != 10 {
		t.Fatalf("PaperBand(128) = %d, want 10 (log2(256)+2)", b)
	}
	if b := PaperBand(512); b != 12 {
		t.Fatalf("PaperBand(512) = %d, want 12", b)
	}
}

func TestDepthBounds(t *testing.T) {
	// Exact QFT depth is Θ(n) at least (serial chain on wire 0) and at
	// most the gate count.
	for _, n := range []int{4, 8, 16} {
		c := Exact(n)
		d := c.Depth()
		if d < n || d > c.Counts().Total() {
			t.Fatalf("n=%d: depth %d outside [n, gates]", n, d)
		}
	}
}

func TestRunPanicsOnWideCircuit(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic beyond the verifier width")
		}
	}()
	Exact(20).Run(0)
}

func TestBuilderPanics(t *testing.T) {
	for i, fn := range []func(){
		func() { Exact(0) },
		func() { Banded(4, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func BenchmarkExactQFTVerify6(b *testing.B) {
	c := Exact(6)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.MaxBasisError()
	}
}

func BenchmarkBuildBanded512(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Banded(1024, 12)
	}
}
