package codes

import (
	"math"
	"testing"
)

func TestMonteCarloValidation(t *testing.T) {
	c := Steane7()
	if _, err := MonteCarloLogicalError(c, -0.1, 100, 1); err == nil {
		t.Fatal("negative p accepted")
	}
	if _, err := MonteCarloLogicalError(c, 1.5, 100, 1); err == nil {
		t.Fatal("p>1 accepted")
	}
	if _, err := MonteCarloLogicalError(c, 0.1, 0, 1); err == nil {
		t.Fatal("zero trials accepted")
	}
}

func TestMonteCarloNoiselessIsPerfect(t *testing.T) {
	for _, c := range All() {
		r, err := MonteCarloLogicalError(c, 0, 500, 3)
		if err != nil {
			t.Fatal(err)
		}
		if r.LogicalFailures != 0 {
			t.Errorf("%s: %d failures at p=0", c.Name, r.LogicalFailures)
		}
	}
}

// TestDistance3QuadraticSuppression: for d=3 codes the logical rate
// must fall roughly quadratically with p (dominated by weight-2
// errors); check the ratio between p=0.02 and p=0.002 is much larger
// than linear scaling would give.
func TestDistance3QuadraticSuppression(t *testing.T) {
	for _, c := range []*Code{Perfect5(), Steane7(), Shor9()} {
		hi, err := MonteCarloLogicalError(c, 0.02, 200000, 7)
		if err != nil {
			t.Fatal(err)
		}
		lo, err := MonteCarloLogicalError(c, 0.002, 200000, 8)
		if err != nil {
			t.Fatal(err)
		}
		if hi.LogicalRate == 0 || lo.LogicalRate == 0 {
			t.Skipf("%s: rates too small at these trials", c.Name)
		}
		ratio := hi.LogicalRate / lo.LogicalRate
		// Quadratic scaling predicts 100x; allow a wide statistical
		// band but demand clearly super-linear (>25x).
		if ratio < 25 {
			t.Errorf("%s: suppression ratio %.1f, want >25 (quadratic)", c.Name, ratio)
		}
	}
}

// TestRepetitionCodeLinearFailure: the bit-flip code leaks Z errors at
// first order — its logical rate tracks p linearly.
func TestRepetitionCodeLinearFailure(t *testing.T) {
	c := Bitflip3()
	hi, err := MonteCarloLogicalError(c, 0.02, 100000, 9)
	if err != nil {
		t.Fatal(err)
	}
	lo, err := MonteCarloLogicalError(c, 0.002, 100000, 10)
	if err != nil {
		t.Fatal(err)
	}
	ratio := hi.LogicalRate / lo.LogicalRate
	if ratio < 5 || ratio > 20 {
		t.Fatalf("suppression ratio %.1f, want ~10 (linear leak)", ratio)
	}
	// And at equal p, the d=1 code must fail far more often than Steane.
	steane, err := MonteCarloLogicalError(Steane7(), 0.02, 100000, 11)
	if err != nil {
		t.Fatal(err)
	}
	if hi.LogicalRate <= steane.LogicalRate {
		t.Fatalf("bit-flip %.4g should fail more than Steane %.4g at p=0.02",
			hi.LogicalRate, steane.LogicalRate)
	}
}

// TestSweepShape: the sweep returns rows for every code at every p and
// rates are monotone in p for each code (statistically, at these trial
// counts and well-separated points).
func TestSweepShape(t *testing.T) {
	ps := []float64{0.001, 0.01, 0.05}
	rows, err := MonteCarloSweep(ps, 40000, 13)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(All())*len(ps) {
		t.Fatalf("rows %d", len(rows))
	}
	for i := 0; i < len(rows); i += len(ps) {
		for j := 1; j < len(ps); j++ {
			if rows[i+j].LogicalRate < rows[i+j-1].LogicalRate {
				t.Errorf("%s: rate not monotone (%g then %g)",
					rows[i+j].Code, rows[i+j-1].LogicalRate, rows[i+j].LogicalRate)
			}
		}
	}
}

func TestMonteCarloDeterministic(t *testing.T) {
	a, err := MonteCarloLogicalError(Steane7(), 0.03, 5000, 77)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MonteCarloLogicalError(Steane7(), 0.03, 5000, 77)
	if err != nil {
		t.Fatal(err)
	}
	if a.LogicalFailures != b.LogicalFailures {
		t.Fatal("non-deterministic MC")
	}
	if math.Abs(a.LogicalRate-float64(a.LogicalFailures)/5000) > 1e-15 {
		t.Fatal("rate inconsistent with counts")
	}
}

// TestMonteCarloBackendAgreement: the scalar and batch backends draw
// different random streams but must estimate the same logical rate for
// every catalog code (two-proportion z-test; fixed seeds make the 5σ
// bound deterministic, not flaky).
func TestMonteCarloBackendAgreement(t *testing.T) {
	const trials = 30000
	for _, c := range All() {
		s, err := MonteCarloLogicalErrorBackend(c, 0.03, trials, 404, BackendScalar)
		if err != nil {
			t.Fatal(err)
		}
		b, err := MonteCarloLogicalErrorBackend(c, 0.03, trials, 505, BackendBatch)
		if err != nil {
			t.Fatal(err)
		}
		if s.LogicalFailures == 0 || b.LogicalFailures == 0 {
			t.Fatalf("%s: no failures at p=0.03 (scalar %d, batch %d); test has no power",
				c.Name, s.LogicalFailures, b.LogicalFailures)
		}
		p1 := s.LogicalRate
		p2 := b.LogicalRate
		pool := float64(s.LogicalFailures+b.LogicalFailures) / (2 * trials)
		se := math.Sqrt(pool * (1 - pool) * (2.0 / trials))
		if z := math.Abs(p1-p2) / se; z > 5 {
			t.Errorf("%s: backends disagree: scalar %.4g, batch %.4g (z=%.2f)", c.Name, p1, p2, z)
		}
	}
}

// TestMonteCarloBatchMatchesScalarCensus: at p=1 every qubit errs in
// every trial on both backends, so the decoders face the same dense
// error population; the heavy-error regime (table misses everywhere)
// must not diverge between the two engines.
func TestMonteCarloBatchMatchesScalarCensus(t *testing.T) {
	for _, c := range All() {
		s, err := MonteCarloLogicalErrorBackend(c, 1, 512, 3, BackendScalar)
		if err != nil {
			t.Fatal(err)
		}
		b, err := MonteCarloLogicalErrorBackend(c, 1, 512, 3, BackendBatch)
		if err != nil {
			t.Fatal(err)
		}
		// At p=1 the hit masks are deterministic (all lanes hit) but the
		// per-hit Pauli choices still differ by stream; compare rates
		// loosely and failure counts for plausibility.
		if math.Abs(s.LogicalRate-b.LogicalRate) > 0.15 {
			t.Errorf("%s: p=1 rates far apart: scalar %.3f, batch %.3f", c.Name, s.LogicalRate, b.LogicalRate)
		}
	}
}

func TestMonteCarloBackendValidation(t *testing.T) {
	_, err := MonteCarloLogicalErrorBackend(Steane7(), 0.01, 10, 1, "warp")
	if err == nil {
		t.Fatal("unknown backend accepted")
	}
	const want = `codes: unknown backend "warp" (want "batch" or "scalar")`
	if err.Error() != want {
		t.Fatalf("error %q, want %q", err, want)
	}
}

func TestMonteCarloBatchDeterministic(t *testing.T) {
	a, err := MonteCarloLogicalErrorBackend(Steane7(), 0.03, 5000, 77, BackendBatch)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MonteCarloLogicalErrorBackend(Steane7(), 0.03, 5000, 77, BackendBatch)
	if err != nil {
		t.Fatal(err)
	}
	if a.LogicalFailures != b.LogicalFailures {
		t.Fatal("non-deterministic batch MC")
	}
}

func BenchmarkMonteCarloSteane(b *testing.B) {
	c := Steane7()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := MonteCarloLogicalError(c, 0.01, 2000, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
