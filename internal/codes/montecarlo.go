package codes

import (
	"fmt"
	"math/rand/v2"

	"qla/internal/pauli"
)

// Monte Carlo backends.
const (
	// BackendBatch is the bit-sliced engine (mcbatch.go): 64 trials per
	// uint64 word, the default (an empty backend selects it).
	BackendBatch = "batch"
	// BackendScalar draws one Pauli error at a time on pauli.String
	// arithmetic — the reference oracle.
	BackendScalar = "scalar"
)

// MCResult is one code-performance Monte Carlo outcome.
type MCResult struct {
	// Code names the measured code.
	Code string
	// PhysError is the per-qubit depolarizing probability applied.
	PhysError float64
	// Trials is the sample count.
	Trials int
	// LogicalFailures counts trials where the decoded residual was a
	// non-trivial logical operator.
	LogicalFailures int
	// LogicalRate is LogicalFailures/Trials.
	LogicalRate float64
	// Backend records the Monte Carlo engine that produced the row
	// ("batch" or "scalar"); the two draw different random streams and
	// agree statistically.
	Backend string `json:"Backend,omitempty"`
}

// MonteCarloLogicalError measures the logical failure rate of a code
// under i.i.d. per-qubit depolarizing noise with probability p on the
// default (batch) backend — see MonteCarloLogicalErrorBackend.
func MonteCarloLogicalError(c *Code, p float64, trials int, seed uint64) (MCResult, error) {
	return MonteCarloLogicalErrorBackend(c, p, trials, seed, "")
}

// MonteCarloLogicalErrorBackend measures the logical failure rate of a
// code under i.i.d. per-qubit depolarizing noise with probability p,
// using the weight-t syndrome-table decoder: each trial draws an
// error, decodes its syndrome, and counts failure when error·correction
// is a non-trivial logical.
//
// The error arithmetic runs on Pauli algebra directly (errors compose
// as Pauli products and success is membership of the residual in the
// stabilizer group), which is exactly the Monte Carlo the QLA paper's
// Figure-7 threshold machinery performs at circuit level — here
// distilled to the code layer so the catalog codes can be compared on
// equal footing: distance-3 codes suppress to O(p²) while the
// repetition codes keep an O(p) channel open.
//
// backend selects the engine: BackendBatch (the default when empty)
// packs 64 trials per uint64 word and runs the syndrome and
// stabilizer-membership arithmetic bit-sliced; BackendScalar is the
// one-trial-at-a-time reference. The two draw different random streams
// from the same seed, so they agree statistically, not bit-for-bit.
func MonteCarloLogicalErrorBackend(c *Code, p float64, trials int, seed uint64, backend string) (MCResult, error) {
	if p < 0 || p > 1 {
		return MCResult{}, fmt.Errorf("codes: depolarizing probability %g outside [0,1]", p)
	}
	if trials <= 0 {
		return MCResult{}, fmt.Errorf("codes: trials must be positive")
	}
	t := (c.D - 1) / 2
	if t < 1 {
		t = 1 // repetition codes still get their best-effort decoder
	}
	dec, err := NewDecoder(c, t)
	if err != nil {
		return MCResult{}, err
	}
	res := MCResult{Code: c.Name, PhysError: p, Trials: trials}
	switch backend {
	case "", BackendBatch:
		res.Backend = BackendBatch
		res.LogicalFailures = mcBatch(c, dec, p, trials, seed)
	case BackendScalar:
		res.Backend = BackendScalar
		res.LogicalFailures = mcScalar(c, dec, p, trials, seed)
	default:
		return MCResult{}, fmt.Errorf("codes: unknown backend %q (want %q or %q)",
			backend, BackendBatch, BackendScalar)
	}
	res.LogicalRate = float64(res.LogicalFailures) / float64(trials)
	return res, nil
}

// mcScalar is the one-trial-at-a-time reference backend.
func mcScalar(c *Code, dec *Decoder, p float64, trials int, seed uint64) int {
	rng := rand.New(rand.NewPCG(seed, seed^0x10c1ca1))
	failures := 0
	for i := 0; i < trials; i++ {
		e := pauli.NewIdentity(c.N)
		hit := false
		for q := 0; q < c.N; q++ {
			if rng.Float64() < p {
				e.Set(q, "XYZ"[rng.IntN(3)])
				hit = true
			}
		}
		if !hit {
			continue
		}
		corr, ok := dec.Lookup(c.SyndromeOf(e))
		if !ok {
			failures++ // syndrome beyond the decoder's budget
			continue
		}
		residual := e.Mul(corr)
		if !residual.IsIdentity() && !c.IsStabilizer(residual) {
			failures++
		}
	}
	return failures
}

// MonteCarloSweep measures every catalog code at each physical error
// rate on the default (batch) backend — the code-layer analogue of the
// paper's Figure 7.
func MonteCarloSweep(physErrors []float64, trials int, seed uint64) ([]MCResult, error) {
	return MonteCarloSweepBackend(physErrors, trials, seed, "")
}

// MonteCarloSweepBackend is MonteCarloSweep with an explicit backend
// selection (empty means BackendBatch).
func MonteCarloSweepBackend(physErrors []float64, trials int, seed uint64, backend string) ([]MCResult, error) {
	var out []MCResult
	for i, c := range All() {
		for j, p := range physErrors {
			r, err := MonteCarloLogicalErrorBackend(c, p, trials, seed+uint64(i*1000+j), backend)
			if err != nil {
				return nil, err
			}
			out = append(out, r)
		}
	}
	return out, nil
}
