package codes

import (
	"fmt"

	"qla/internal/pauli"
)

// Decoder is a minimum-weight syndrome-table decoder: it maps every
// syndrome reachable by an error of weight ≤ maxWeight to a
// lowest-weight representative error producing it.
type Decoder struct {
	code      *Code
	maxWeight int
	table     map[uint64]pauli.String
}

// NewDecoder enumerates all errors of weight 0..maxWeight and builds
// the syndrome table. Enumeration visits weights in ascending order, so
// each syndrome keeps its lowest-weight representative. The table size
// is bounded by 2^(n-k); maxWeight is typically t = (d-1)/2.
func NewDecoder(c *Code, maxWeight int) (*Decoder, error) {
	if maxWeight < 0 || maxWeight > c.N {
		return nil, fmt.Errorf("codes: bad decoder weight budget %d", maxWeight)
	}
	d := &Decoder{code: c, maxWeight: maxWeight, table: map[uint64]pauli.String{
		0: pauli.NewIdentity(c.N),
	}}
	positions := make([]int, maxWeight)
	assign := make([]byte, maxWeight)
	letters := []byte{'X', 'Y', 'Z'}
	for w := 1; w <= maxWeight; w++ {
		var overPositions func(start, depth int)
		var overLetters func(depth int)
		overLetters = func(depth int) {
			if depth == w {
				p := pauli.NewIdentity(c.N)
				for i := 0; i < w; i++ {
					p.Set(positions[i], assign[i])
				}
				s := c.SyndromeOf(p)
				if _, ok := d.table[s]; !ok {
					d.table[s] = p
				}
				return
			}
			for _, l := range letters {
				assign[depth] = l
				overLetters(depth + 1)
			}
		}
		overPositions = func(start, depth int) {
			if depth == w {
				overLetters(0)
				return
			}
			for q := start; q <= c.N-(w-depth); q++ {
				positions[depth] = q
				overPositions(q+1, depth+1)
			}
		}
		overPositions(0, 0)
	}
	return d, nil
}

// MaxWeight returns the weight budget the table was built with.
func (d *Decoder) MaxWeight() int { return d.maxWeight }

// TableSize returns the number of distinct syndromes in the table.
func (d *Decoder) TableSize() int { return len(d.table) }

// Lookup returns the stored correction for a syndrome, or false if the
// syndrome is outside the table (an error heavier than the budget).
func (d *Decoder) Lookup(syndrome uint64) (pauli.String, bool) {
	p, ok := d.table[syndrome]
	if !ok {
		return pauli.String{}, false
	}
	return p.Clone(), true
}

// Decode returns the correction the decoder would apply for the given
// physical error.
func (d *Decoder) Decode(err pauli.String) (pauli.String, bool) {
	return d.Lookup(d.code.SyndromeOf(err))
}

// Corrects reports whether the decoder exactly corrects the error: the
// correction it returns composes with the error to an element of the
// stabilizer group (identity action on the logical state).
func (d *Decoder) Corrects(err pauli.String) bool {
	corr, ok := d.Decode(err)
	if !ok {
		return false
	}
	residual := err.Mul(corr)
	for q := 0; q < residual.N; q++ {
		if residual.At(q) != 'I' {
			return d.code.IsStabilizer(residual)
		}
	}
	return true // residual is identity
}

// CorrectsAllWeight reports whether every weight-w error is exactly
// corrected. For a distance-d code with table budget t = (d-1)/2 this
// must hold for all w ≤ t.
func (d *Decoder) CorrectsAllWeight(w int) bool {
	c := d.code
	positions := make([]int, w)
	assign := make([]byte, w)
	letters := []byte{'X', 'Y', 'Z'}
	ok := true
	var overPositions func(start, depth int)
	var overLetters func(depth int)
	overLetters = func(depth int) {
		if !ok {
			return
		}
		if depth == w {
			p := pauli.NewIdentity(c.N)
			for i := 0; i < w; i++ {
				p.Set(positions[i], assign[i])
			}
			if !d.Corrects(p) {
				ok = false
			}
			return
		}
		for _, l := range letters {
			assign[depth] = l
			overLetters(depth + 1)
		}
	}
	overPositions = func(start, depth int) {
		if !ok {
			return
		}
		if depth == w {
			overLetters(0)
			return
		}
		for q := start; q <= c.N-(w-depth); q++ {
			positions[depth] = q
			overPositions(q+1, depth+1)
		}
	}
	if w == 0 {
		return d.Corrects(pauli.NewIdentity(c.N))
	}
	overPositions(0, 0)
	return ok
}
