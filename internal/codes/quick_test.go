package codes

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"qla/internal/pauli"
	"qla/internal/stabilizer"
)

func randomPauli(r *rand.Rand, n int) pauli.String {
	p := pauli.NewIdentity(n)
	for q := 0; q < n; q++ {
		p.Set(q, "IXYZ"[r.IntN(4)])
	}
	return p
}

// Property: multiplying an error by any stabilizer-group element leaves
// its syndrome unchanged (the coset structure the decoder relies on).
func TestQuickSyndromeCosetInvariant(t *testing.T) {
	catalog := All()
	f := func(seed uint64, pick, mask uint8) bool {
		r := rand.New(rand.NewPCG(seed, seed^0xc0de))
		c := catalog[int(pick)%len(catalog)]
		e := randomPauli(r, c.N)
		s := pauli.NewIdentity(c.N)
		for i, g := range c.Stabilizers {
			if mask>>(uint(i)%8)&1 == 1 {
				s = s.Mul(g)
			}
		}
		return c.SyndromeOf(e.Mul(s)) == c.SyndromeOf(e)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: applying a random product of pure errors produces exactly
// the syndrome of the chosen subset mask.
func TestQuickPureErrorSubsets(t *testing.T) {
	catalog := []*Code{Perfect5(), Steane7(), Shor9()}
	pures := make([][]pauli.String, len(catalog))
	for i, c := range catalog {
		p, err := c.PureErrors()
		if err != nil {
			t.Fatal(err)
		}
		pures[i] = p
	}
	f := func(pick uint8, mask uint16) bool {
		i := int(pick) % len(catalog)
		c := catalog[i]
		m := uint64(mask) & (1<<uint(len(c.Stabilizers)) - 1)
		e := pauli.NewIdentity(c.N)
		for j := range c.Stabilizers {
			if m>>uint(j)&1 == 1 {
				e = e.Mul(pures[i][j])
			}
		}
		return c.SyndromeOf(e) == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: after PrepareZero, applying any stabilizer-group element
// leaves the tableau state fixed up to global phase (SameState).
func TestQuickStabilizersFixPreparedState(t *testing.T) {
	catalog := []*Code{Perfect5(), Steane7(), Shor9()}
	f := func(seed uint64, pick, mask uint8) bool {
		c := catalog[int(pick)%len(catalog)]
		s := stabilizer.NewSeeded(c.N, seed)
		if err := c.PrepareZero(s); err != nil {
			return false
		}
		g := pauli.NewIdentity(c.N)
		for i := range c.Stabilizers {
			if mask>>(uint(i)%8)&1 == 1 {
				g = g.Mul(c.Stabilizers[i])
			}
		}
		ref := s.Clone()
		s.ApplyPauli(g)
		return s.SameState(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Property: the decoder corrects every weight-1 error regardless of
// which qubit and letter are hit (randomized variant of the exhaustive
// unit test, exercised across all distance-3 codes).
func TestQuickWeight1AlwaysCorrected(t *testing.T) {
	catalog := []*Code{Perfect5(), Steane7(), Shor9()}
	decs := make([]*Decoder, len(catalog))
	for i, c := range catalog {
		d, err := NewDecoder(c, 1)
		if err != nil {
			t.Fatal(err)
		}
		decs[i] = d
	}
	f := func(pick, q, letter uint8) bool {
		i := int(pick) % len(catalog)
		c := catalog[i]
		e := pauli.NewIdentity(c.N)
		e.Set(int(q)%c.N, "XYZ"[int(letter)%3])
		return decs[i].Corrects(e)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
