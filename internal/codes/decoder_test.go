package codes

import (
	"testing"

	"qla/internal/iontrap"
	"qla/internal/pauli"
)

// TestDistance3CodesCorrectWeight1 is the core decoder guarantee: every
// distance-3 code exactly corrects every single-qubit error.
func TestDistance3CodesCorrectWeight1(t *testing.T) {
	for _, c := range []*Code{Perfect5(), Steane7(), Shor9()} {
		d, err := NewDecoder(c, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !d.CorrectsAllWeight(0) {
			t.Errorf("%s: identity not corrected", c.Name)
		}
		if !d.CorrectsAllWeight(1) {
			t.Errorf("%s: some weight-1 error not corrected", c.Name)
		}
	}
}

// TestRepetitionCodesAreAsymmetric: the bit-flip code corrects X but
// not Z; Z errors are syndrome-invisible and leave a logical residual.
func TestRepetitionCodesAreAsymmetric(t *testing.T) {
	c := Bitflip3()
	d, err := NewDecoder(c, 1)
	if err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 3; q++ {
		x := pauli.NewIdentity(3)
		x.Set(q, 'X')
		if !d.Corrects(x) {
			t.Errorf("X on qubit %d not corrected", q)
		}
	}
	z := pauli.MustParse("+ZII")
	if c.SyndromeOf(z) != 0 {
		t.Fatal("Z error should be syndrome-invisible on the bit-flip code")
	}
	if d.Corrects(z) {
		t.Fatal("decoder cannot correct an invisible Z error")
	}
}

// TestWeight2BeyondBudget: a distance-3 code cannot correct all
// weight-2 errors; the decoder must fail on at least one.
func TestWeight2BeyondBudget(t *testing.T) {
	c := Steane7()
	d, err := NewDecoder(c, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d.CorrectsAllWeight(2) {
		t.Fatal("distance-3 decoder claims to correct all weight-2 errors")
	}
}

// TestTableSizes: for a perfect code, weight-≤1 errors fill the entire
// syndrome space (2^(n-k) = 1 + 3n for [[5,1,3]]).
func TestTableSizes(t *testing.T) {
	d, err := NewDecoder(Perfect5(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.TableSize(); got != 16 {
		t.Fatalf("perfect code table size = %d, want 16 (code is perfect)", got)
	}
	// Steane: 1 + 3*7 = 22 syndromes reachable at weight ≤ 1, of 64.
	ds, err := NewDecoder(Steane7(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := ds.TableSize(); got != 22 {
		t.Fatalf("Steane table size = %d, want 22", got)
	}
}

func TestLookupUnknownSyndrome(t *testing.T) {
	d, err := NewDecoder(Steane7(), 1)
	if err != nil {
		t.Fatal(err)
	}
	// Find a syndrome outside the weight-1 table: weight-2 errors on a
	// non-perfect code reach fresh syndromes.
	e := pauli.MustParse("+XZIIIII")
	s := Steane7().SyndromeOf(e)
	if _, ok := d.Lookup(s); ok {
		// Some weight-2 syndromes collide with weight-1 entries; pick
		// another pair that cannot (X and Z parts both non-trivial on
		// distinct qubits produce a joint syndrome).
		e = pauli.MustParse("+XIZIIII")
		s = Steane7().SyndromeOf(e)
		if _, ok := d.Lookup(s); ok {
			t.Skip("both probes collided with weight-1 syndromes")
		}
	}
}

func TestNewDecoderRejectsBadBudget(t *testing.T) {
	if _, err := NewDecoder(Steane7(), -1); err == nil {
		t.Fatal("expected error for negative budget")
	}
	if _, err := NewDecoder(Steane7(), 8); err == nil {
		t.Fatal("expected error for budget beyond n")
	}
}

// TestDecodeReturnsClones: mutating a returned correction must not
// corrupt the table.
func TestDecodeReturnsClones(t *testing.T) {
	d, err := NewDecoder(Steane7(), 1)
	if err != nil {
		t.Fatal(err)
	}
	e := pauli.MustParse("+XIIIIII")
	c1, _ := d.Decode(e)
	c1.Set(3, 'Y')
	c2, _ := d.Decode(e)
	if c2.At(3) != 'I' {
		t.Fatal("decoder table mutated through returned value")
	}
}

// TestCostModelOrdering documents the ablation the catalog enables:
// Steane's block is smaller than Shor's, the perfect code's is smaller
// still, and extraction time orders by total check weight.
func TestCostModelOrdering(t *testing.T) {
	p := iontrap.Expected()
	costs := Ablation(p)
	byName := map[string]ECCost{}
	for _, c := range costs {
		byName[c.Code] = c
		if c.TimeSeconds <= 0 || c.TotalQubits <= c.DataQubits {
			t.Errorf("%s: degenerate cost %+v", c.Code, c)
		}
	}
	steane := byName[Steane7().Name]
	shor := byName[Shor9().Name]
	perfect := byName[Perfect5().Name]
	if !(perfect.DataQubits < steane.DataQubits && steane.DataQubits < shor.DataQubits) {
		t.Fatal("block sizes out of order")
	}
	// Shor's 6 weight-2 checks + 2 weight-6 checks need the widest cat
	// state of the three.
	if shor.AncillaQubits <= steane.AncillaQubits {
		t.Fatalf("Shor cat width %d should exceed Steane's %d", shor.AncillaQubits, steane.AncillaQubits)
	}
	// The perfect code has the fewest generators (4) of the d=3 codes,
	// hence the shortest serial extraction.
	if perfect.TimeSeconds >= steane.TimeSeconds {
		t.Fatalf("perfect-code extraction %.6fs should beat Steane %.6fs",
			perfect.TimeSeconds, steane.TimeSeconds)
	}
}

func BenchmarkNewDecoderShor9(b *testing.B) {
	c := Shor9()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := NewDecoder(c, 1); err != nil {
			b.Fatal(err)
		}
	}
}
