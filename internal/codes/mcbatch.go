package codes

// Bit-sliced decoder Monte Carlo: 64 trials per uint64 word. Errors
// are drawn as 64-lane depolarizing hit masks via noise.BatchModel
// (geometric skip-ahead, so a qubit site costs O(1) plus O(actual
// hits)), syndromes are computed as lane-mask XOR folds over the
// generators' support, and the success criterion — the residual
// error·correction lies in the stabilizer group — runs as a
// lane-stacked GF(2) span-membership check: the symplectic kernels of
// codes.go generalized from one vector to 64 lanes per word. Only the
// per-lane syndrome-table lookup remains scalar, and only dirty lanes
// pay for it.
//
// Equivalence with the scalar path: failure ⇔ residual ∉ span(S).
// A syndrome-table miss leaves the identity correction, and the
// residual (the raw error, with a non-zero syndrome) cannot lie in the
// span, so the scalar path's explicit miss-counting folds into the
// same test. The identity residual is in the span, covering the
// scalar path's IsIdentity early-out.

import (
	"math/bits"

	"qla/internal/iontrap"
	"qla/internal/noise"
	"qla/internal/pauli"
	"qla/internal/pauliframe"
)

// mcKernel holds the precomputed bit-sliced machinery for one (code,
// decoder) pair.
type mcKernel struct {
	c   *Code
	dec *Decoder
	// genXSupport[i] / genZSupport[i] list the qubits where generator i
	// carries an X / Z component: the error anticommutes with generator
	// i iff the XOR fold of (error Z-bits over genXSupport) and (error
	// X-bits over genZSupport) is odd.
	genXSupport, genZSupport [][]int
	// span is the reduced row echelon form of the stabilizer group's
	// symplectic vectors; spanPivots[r] is row r's pivot column and
	// spanSupport[r] its set bit positions. Transposed elimination over
	// these rows reduces 64 lane-stacked residuals at once.
	spanPivots  []int
	spanSupport [][]int
	// corrBits caches each table syndrome's correction as symplectic
	// bit positions (x part at q, z part at n+q).
	corrBits map[uint64][]int
}

func newMCKernel(c *Code, dec *Decoder) *mcKernel {
	k := &mcKernel{
		c:        c,
		dec:      dec,
		corrBits: make(map[uint64][]int, len(dec.table)),
	}
	for _, g := range c.Stabilizers {
		var xs, zs []int
		for q := 0; q < c.N; q++ {
			if g.XBit(q) {
				xs = append(xs, q)
			}
			if g.ZBit(q) {
				zs = append(zs, q)
			}
		}
		k.genXSupport = append(k.genXSupport, xs)
		k.genZSupport = append(k.genZSupport, zs)
	}
	rows, pivots := reducedRowEchelon(vectors(c.Stabilizers), 2*c.N)
	k.spanPivots = pivots
	for _, row := range rows {
		var support []int
		for j := 0; j < 2*c.N; j++ {
			if getBit(row, j) {
				support = append(support, j)
			}
		}
		k.spanSupport = append(k.spanSupport, support)
	}
	for s, p := range dec.table {
		k.corrBits[s] = symplecticBits(p)
	}
	return k
}

// symplecticBits lists the set positions of p's symplectic vector.
func symplecticBits(p pauli.String) []int {
	var out []int
	for q := 0; q < p.N; q++ {
		if p.XBit(q) {
			out = append(out, q)
		}
		if p.ZBit(q) {
			out = append(out, p.N+q)
		}
	}
	return out
}

// reducedRowEchelon row-reduces rows over GF(2) to RREF, dropping zero
// rows; it returns the reduced rows and their pivot columns.
func reducedRowEchelon(rows [][]uint64, bits int) (m [][]uint64, pivots []int) {
	m = cloneRows(rows)
	r := 0
	for col := 0; col < bits && r < len(m); col++ {
		pivot := -1
		for i := r; i < len(m); i++ {
			if getBit(m[i], col) {
				pivot = i
				break
			}
		}
		if pivot < 0 {
			continue
		}
		m[r], m[pivot] = m[pivot], m[r]
		for i := 0; i < len(m); i++ {
			if i != r && getBit(m[i], col) {
				xorInto(m[i], m[r])
			}
		}
		pivots = append(pivots, col)
		r++
	}
	return m[:r], pivots
}

// runBlock executes one 64-trial block: draw lane-stacked depolarizing
// errors, decode per dirty lane, and reduce the residuals against the
// stabilizer span in one bit-sliced elimination. It returns the number
// of failed lanes among the active ones.
func (k *mcKernel) runBlock(model *noise.BatchModel, f *pauliframe.Batch, residual []uint64, p float64, active uint64) int {
	n := k.c.N
	f.Clear()
	for q := 0; q < n; q++ {
		model.Depolarize1(f, q, p, active)
	}

	// residual planes: bit j of plane l... plane[j] holds the lane mask
	// of trials whose residual has symplectic bit j set.
	dirty := uint64(0)
	for q := 0; q < n; q++ {
		residual[q] = f.XBits(q)
		residual[n+q] = f.ZBits(q)
		dirty |= residual[q] | residual[n+q]
	}
	if dirty == 0 {
		return 0
	}

	// Lane-stacked syndromes: one XOR fold per generator.
	syndrome := make([]uint64, len(k.genXSupport))
	for i := range k.genXSupport {
		var s uint64
		for _, q := range k.genZSupport[i] {
			s ^= residual[q] // error X components vs generator Z
		}
		for _, q := range k.genXSupport[i] {
			s ^= residual[n+q] // error Z components vs generator X
		}
		syndrome[i] = s
	}

	// Apply each dirty lane's table correction (identity on a miss: the
	// untouched residual then fails the span test, as it must).
	for d := dirty; d != 0; d &= d - 1 {
		lane := bits.TrailingZeros64(d)
		var s uint64
		for i, sm := range syndrome {
			s |= sm >> uint(lane) & 1 << uint(i)
		}
		for _, j := range k.corrBits[s] {
			residual[j] ^= 1 << uint(lane)
		}
	}

	// Bit-sliced span membership: eliminate the RREF pivots from all 64
	// residuals at once; a lane with any surviving bit is outside the
	// stabilizer group — a logical failure.
	for r, pivot := range k.spanPivots {
		m := residual[pivot]
		if m == 0 {
			continue
		}
		for _, j := range k.spanSupport[r] {
			residual[j] ^= m
		}
	}
	var fail uint64
	for _, plane := range residual[:2*n] {
		fail |= plane
	}
	return bits.OnesCount64(fail & active)
}

// mcBatch is the bit-sliced backend of MonteCarloLogicalError: blocks
// of 64 trials, each block's noise model seeded from its global index.
func mcBatch(c *Code, dec *Decoder, p float64, trials int, seed uint64) int {
	k := newMCKernel(c, dec)
	f := pauliframe.NewBatch(c.N)
	residual := make([]uint64, 2*c.N)
	model := noise.NewBatchModel(iontrap.Params{}, 0)
	failures := 0
	blocks := (trials + pauliframe.Lanes - 1) / pauliframe.Lanes
	for b := 0; b < blocks; b++ {
		lanes := pauliframe.Lanes
		if rem := trials - b*pauliframe.Lanes; rem < lanes {
			lanes = rem
		}
		// One model, reseeded per block from the block's global index:
		// blocks stay independently seeded (the single probability p
		// makes Reseed exactly fresh-model equivalent) without a model
		// + RNG + sampler allocation each.
		model.Reseed(seed ^ (uint64(b)+1)*0x9e3779b97f4a7c15 ^ 0xc0de5)
		failures += k.runBlock(model, f, residual, p, pauliframe.LaneMask(lanes))
	}
	return failures
}
