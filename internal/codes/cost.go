package codes

import (
	"math"

	"qla/internal/iontrap"
)

// ECCost is the resource bill for one full syndrome-extraction round of
// a code under Shor-style (cat-state) extraction: every generator is
// measured once through a verified GHZ ancilla of the generator's
// weight. It is the uniform yardstick the code-choice ablation uses;
// the QLA's Steane-style extraction for the [[7,1,3]] code (internal/ft)
// is cheaper in time but code-specific.
type ECCost struct {
	// Code names the measured code.
	Code string
	// DataQubits is the block size n.
	DataQubits int
	// AncillaQubits is the widest cat state needed (reused serially).
	AncillaQubits int
	// TotalQubits = DataQubits + AncillaQubits.
	TotalQubits int
	// TwoQubitGates counts cat-state construction plus data couplings.
	TwoQubitGates int
	// Preps counts ancilla initializations.
	Preps int
	// Measures counts ancilla readouts.
	Measures int
	// TimeSeconds is the serial extraction latency under the given
	// technology parameters: per generator, one prep layer, a
	// log-depth cat construction, one transversal coupling layer and
	// one readout layer.
	TimeSeconds float64
}

// SyndromeCost evaluates the cat-state extraction bill for a code.
func SyndromeCost(c *Code, p iontrap.Params) ECCost {
	cost := ECCost{Code: c.Name, DataQubits: c.N}
	for _, g := range c.Stabilizers {
		w := g.Weight()
		if w > cost.AncillaQubits {
			cost.AncillaQubits = w
		}
		cost.Preps += w
		cost.Measures += w
		cost.TwoQubitGates += (w - 1) + w // cat construction + couplings
		catDepth := 0
		if w > 1 {
			catDepth = int(math.Ceil(math.Log2(float64(w))))
		}
		cost.TimeSeconds += p.Time[iontrap.OpPrep] +
			float64(catDepth)*p.Time[iontrap.OpDouble] +
			p.Time[iontrap.OpDouble] +
			p.Time[iontrap.OpMeasure]
	}
	cost.TotalQubits = cost.DataQubits + cost.AncillaQubits
	return cost
}

// Ablation compares every catalog code under the same parameters —
// the quantitative backing for the paper's Section 4.1.3 remark that
// the logical-qubit structure "is optimized for the error correction
// circuit and may vary for different codes".
func Ablation(p iontrap.Params) []ECCost {
	all := All()
	out := make([]ECCost, len(all))
	for i, c := range all {
		out[i] = SyndromeCost(c, p)
	}
	return out
}
