package codes

import (
	"qla/internal/pauli"
	"qla/internal/steane"
)

// Bitflip3 returns the 3-qubit repetition code the paper's Figure 4
// uses to illustrate the level-1 building block. It corrects a single
// bit-flip (X-distance 3) but no phase flips (Z-distance 1, so the
// quantum distance is 1).
func Bitflip3() *Code {
	return &Code{
		Name: "bit-flip [[3,1,1]]",
		N:    3, K: 1, D: 1,
		Stabilizers: []pauli.String{
			pauli.MustParse("+ZZI"),
			pauli.MustParse("+IZZ"),
		},
		LogicalX: []pauli.String{pauli.MustParse("+XXX")},
		LogicalZ: []pauli.String{pauli.MustParse("+ZII")},
	}
}

// Phaseflip3 returns the 3-qubit phase-flip repetition code: the
// Hadamard conjugate of Bitflip3 (Z-distance 3, X-distance 1).
func Phaseflip3() *Code {
	return &Code{
		Name: "phase-flip [[3,1,1]]",
		N:    3, K: 1, D: 1,
		Stabilizers: []pauli.String{
			pauli.MustParse("+XXI"),
			pauli.MustParse("+IXX"),
		},
		LogicalX: []pauli.String{pauli.MustParse("+XII")},
		LogicalZ: []pauli.String{pauli.MustParse("+ZZZ")},
	}
}

// Shor9 returns Shor's [[9,1,3]] code — the concatenation of the
// phase-flip code over bit-flip triples, and the first code shown to
// correct an arbitrary single-qubit error. Its inner Z-checks have
// weight 2, cheaper to extract than Steane's weight-4 checks, but the
// block needs 9 data ions instead of 7 — the trade the cost model in
// this package quantifies.
func Shor9() *Code {
	return &Code{
		Name: "Shor [[9,1,3]]",
		N:    9, K: 1, D: 3,
		Stabilizers: []pauli.String{
			pauli.MustParse("+ZZIIIIIII"),
			pauli.MustParse("+IZZIIIIII"),
			pauli.MustParse("+IIIZZIIII"),
			pauli.MustParse("+IIIIZZIII"),
			pauli.MustParse("+IIIIIIZZI"),
			pauli.MustParse("+IIIIIIIZZ"),
			pauli.MustParse("+XXXXXXIII"),
			pauli.MustParse("+IIIXXXXXX"),
		},
		// |0⟩_L = (|000⟩+|111⟩)^⊗3: a single Z in each triple flips the
		// relative sign, so X̄ = Z1·Z4·Z7; X on a full triple fixes
		// |0⟩_L and negates |1⟩_L, so Z̄ = X1·X2·X3.
		LogicalX: []pauli.String{pauli.MustParse("+ZIIZIIZII")},
		LogicalZ: []pauli.String{pauli.MustParse("+XXXIIIIII")},
	}
}

// Steane7 returns the Steane [[7,1,3]] code as a Code value, sourced
// from internal/steane so the two packages can never drift apart. This
// is the code the QLA adopts: it is the smallest CSS code with a full
// transversal Clifford group, which is what lets the paper implement
// every logical gate as 49 parallel physical gates.
func Steane7() *Code {
	return &Code{
		Name: "Steane [[7,1,3]]",
		N:    steane.N, K: 1, D: 3,
		Stabilizers: steane.Generators(),
		LogicalX:    []pauli.String{steane.LogicalX()},
		LogicalZ:    []pauli.String{steane.LogicalZ()},
	}
}

// Perfect5 returns the [[5,1,3]] "perfect" code — the smallest code
// correcting an arbitrary single-qubit error. It is not CSS, so CNOT
// is not transversal on it; the QLA's transversal-gate requirement is
// exactly why the paper passes over it despite the smaller block.
func Perfect5() *Code {
	return &Code{
		Name: "perfect [[5,1,3]]",
		N:    5, K: 1, D: 3,
		Stabilizers: []pauli.String{
			pauli.MustParse("+XZZXI"),
			pauli.MustParse("+IXZZX"),
			pauli.MustParse("+XIXZZ"),
			pauli.MustParse("+ZXIXZ"),
		},
		LogicalX: []pauli.String{pauli.MustParse("+XXXXX")},
		LogicalZ: []pauli.String{pauli.MustParse("+ZZZZZ")},
	}
}

// All returns the full catalog, smallest block first.
func All() []*Code {
	return []*Code{Bitflip3(), Phaseflip3(), Perfect5(), Steane7(), Shor9()}
}
