package codes

import (
	"testing"

	"qla/internal/pauli"
	"qla/internal/stabilizer"
)

func TestCatalogValidates(t *testing.T) {
	for _, c := range All() {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
	}
}

func TestCSSClassification(t *testing.T) {
	want := map[string]bool{
		Bitflip3().Name:   true,
		Phaseflip3().Name: true,
		Shor9().Name:      true,
		Steane7().Name:    true,
		Perfect5().Name:   false, // mixed X/Z generators
	}
	for _, c := range All() {
		if got := c.IsCSS(); got != want[c.Name] {
			t.Errorf("%s: IsCSS = %v, want %v", c.Name, got, want[c.Name])
		}
	}
}

// TestDistances certifies the claimed distance of every catalog code by
// brute force.
func TestDistances(t *testing.T) {
	for _, c := range All() {
		d, ok := c.Distance(c.D)
		if !ok || d != c.D {
			t.Errorf("%s: measured distance (%d,%v), want %d", c.Name, d, ok, c.D)
		}
	}
}

// TestTypedDistances pins the asymmetry of the repetition codes: the
// bit-flip code protects against X at distance 3 but fails Z at weight
// 1, and vice versa for the phase-flip code.
func TestTypedDistances(t *testing.T) {
	cases := []struct {
		code     *Code
		letter   byte
		distance int
	}{
		{Bitflip3(), 'X', 3},
		{Bitflip3(), 'Z', 1},
		{Phaseflip3(), 'X', 1},
		{Phaseflip3(), 'Z', 3},
		{Steane7(), 'X', 3},
		{Steane7(), 'Z', 3},
	}
	for _, tc := range cases {
		d, ok := tc.code.TypedDistance(tc.letter, tc.code.N)
		if !ok || d != tc.distance {
			t.Errorf("%s %c-distance: got (%d,%v), want %d", tc.code.Name, tc.letter, d, ok, tc.distance)
		}
	}
}

func TestValidateRejectsBrokenCodes(t *testing.T) {
	broken := func(mutate func(*Code)) *Code {
		c := Steane7()
		mutate(c)
		return c
	}
	cases := []struct {
		name string
		c    *Code
	}{
		{"anticommuting generators", broken(func(c *Code) {
			c.Stabilizers[0] = pauli.MustParse("+ZIIIIII")
			c.Stabilizers[1] = pauli.MustParse("+XIIIIII")
		})},
		{"dependent generators", broken(func(c *Code) {
			c.Stabilizers[1] = c.Stabilizers[0].Clone()
		})},
		{"logical anticommutes with generator", broken(func(c *Code) {
			c.LogicalX[0] = pauli.MustParse("+XIIIIII")
		})},
		{"logical in group", broken(func(c *Code) {
			c.LogicalX[0] = c.Stabilizers[0].Clone()
			// keep pairing plausible: X-type generator commutes with Z⊗7?
			// It does (even overlap), so the in-group check must fire.
		})},
		{"wrong width", broken(func(c *Code) {
			c.Stabilizers[0] = pauli.MustParse("+ZZ")
		})},
		{"negative phase", broken(func(c *Code) {
			g := c.Stabilizers[0].Clone()
			g.Phase = 2
			c.Stabilizers[0] = g
		})},
		{"bad counts", broken(func(c *Code) {
			c.Stabilizers = c.Stabilizers[:5]
		})},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.c.Validate(); err == nil {
				t.Fatalf("Validate accepted a broken code")
			}
		})
	}
}

// TestPureErrors verifies the destabilizer construction: D_i flips
// exactly syndrome bit i and commutes with the logicals.
func TestPureErrors(t *testing.T) {
	for _, c := range All() {
		pure, err := c.PureErrors()
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		for i, d := range pure {
			if got := c.SyndromeOf(d); got != 1<<uint(i) {
				t.Errorf("%s: pure error %d has syndrome %b, want %b", c.Name, i, got, 1<<uint(i))
			}
			for l := 0; l < c.K; l++ {
				if !d.Commutes(c.LogicalX[l]) || !d.Commutes(c.LogicalZ[l]) {
					t.Errorf("%s: pure error %d disturbs logical %d", c.Name, i, l)
				}
			}
		}
	}
}

// TestPrepareZero runs the projective encoder on the tableau backend
// for every code and verifies the resulting state is a +1 eigenstate of
// every generator and of logical Z.
func TestPrepareZero(t *testing.T) {
	for _, c := range All() {
		for seed := uint64(1); seed <= 8; seed++ {
			s := stabilizer.NewSeeded(c.N, seed)
			if err := c.PrepareZero(s); err != nil {
				t.Fatalf("%s seed %d: %v", c.Name, seed, err)
			}
			// Logical X must have indeterminate expectation on |0⟩_L
			// unless it is also a stabilizer (it never is).
			if got := s.Expectation(c.LogicalX[0]); got != 0 {
				t.Errorf("%s: logical X expectation %d on |0⟩_L, want 0", c.Name, got)
			}
		}
	}
}

// TestPrepareZeroMatchesSteaneEncoder cross-checks the projective
// encoder against the hand-written Steane encoding circuit from
// internal/steane: both must stabilize the identical group.
func TestPrepareZeroMatchesSteaneEncoder(t *testing.T) {
	c := Steane7()
	s := stabilizer.NewSeeded(7, 3)
	if err := c.PrepareZero(s); err != nil {
		t.Fatal(err)
	}
	for _, g := range c.Stabilizers {
		if s.Expectation(g) != 1 {
			t.Fatalf("projective |0⟩_L does not stabilize %v", g)
		}
	}
	if s.Expectation(c.LogicalZ[0]) != 1 {
		t.Fatal("projective |0⟩_L has wrong logical Z")
	}
}

func TestPrepareZeroWidthMismatch(t *testing.T) {
	c := Steane7()
	if err := c.PrepareZero(stabilizer.New(5)); err == nil {
		t.Fatal("expected width mismatch error")
	}
}

// TestSyndromeLinear: syndromes compose linearly — the syndrome of a
// product is the XOR of syndromes.
func TestSyndromeLinear(t *testing.T) {
	c := Shor9()
	a := pauli.MustParse("+XIIIIIIII")
	b := pauli.MustParse("+IIIIZIIII")
	if got := c.SyndromeOf(a.Mul(b)); got != c.SyndromeOf(a)^c.SyndromeOf(b) {
		t.Fatalf("syndrome not linear: %b vs %b", got, c.SyndromeOf(a)^c.SyndromeOf(b))
	}
}

func TestIsStabilizerProducts(t *testing.T) {
	c := Steane7()
	// Any product of generators is in the group.
	p := c.Stabilizers[0].Mul(c.Stabilizers[3]).Mul(c.Stabilizers[5])
	if !c.IsStabilizer(p) {
		t.Fatal("product of generators not recognized as stabilizer")
	}
	// A logical is not.
	if c.IsStabilizer(c.LogicalX[0]) {
		t.Fatal("logical X misclassified as stabilizer")
	}
}

func TestSolveInconsistent(t *testing.T) {
	// rows: x0, x0 — demand x0=0 and x0=1.
	rows := [][]uint64{{1}, {1}}
	if _, err := solve(rows, []bool{false, true}, 4); err == nil {
		t.Fatal("expected inconsistency")
	}
}

func TestRankAndSpan(t *testing.T) {
	rows := [][]uint64{{0b011}, {0b110}, {0b101}} // third = first XOR second
	if r := rank(rows, 3); r != 2 {
		t.Fatalf("rank = %d, want 2", r)
	}
	if !inSpan(rows[:2], []uint64{0b101}, 3) {
		t.Fatal("0b101 should be in span")
	}
	if inSpan(rows[:2], []uint64{0b111}, 3) {
		t.Fatal("0b111 should not be in span")
	}
}

func TestVectorRoundTrip(t *testing.T) {
	p := pauli.MustParse("+XYZIZYX")
	q := fromVector(vector(p), p.N)
	if !p.EqualUpToPhase(q) {
		t.Fatalf("round trip: %v != %v", p, q)
	}
}

func BenchmarkDistanceSteane(b *testing.B) {
	c := Steane7()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Distance(3)
	}
}

func BenchmarkPrepareZeroShor9(b *testing.B) {
	c := Shor9()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := stabilizer.NewSeeded(c.N, uint64(i))
		if err := c.PrepareZero(s); err != nil {
			b.Fatal(err)
		}
	}
}
