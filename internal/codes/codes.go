// Package codes provides a generic stabilizer quantum error-correcting
// code framework: code definitions as stabilizer generators plus logical
// operators, structural validation, GF(2) symplectic linear algebra,
// brute-force distance certification, syndrome-table decoding, and a
// projective encoder that prepares logical states on the stabilizer
// backend.
//
// The QLA paper fixes the Steane [[7,1,3]] code for its logical qubits
// but notes the block structure "is easily extended to 7-bit and larger
// codes" (Section 3) and that "the structure of our qubit is optimized
// for the error correction circuit and may vary for different codes"
// (Section 4.1.3). This package makes that claim testable: it ships the
// 3-qubit bit-flip code the paper's Figure 4 illustrates, the Steane
// code it adopts, and the Shor [[9,1,3]] and perfect [[5,1,3]] codes as
// alternatives, with a uniform cost model (internal/codes/cost.go) that
// quantifies the qubit-count/latency trade the paper's design decision
// rests on.
package codes

import (
	"errors"
	"fmt"

	"qla/internal/pauli"
	"qla/internal/stabilizer"
)

// Code is an [[n,k,d]] stabilizer code: n-k independent commuting
// stabilizer generators and k pairs of logical operators.
type Code struct {
	// Name identifies the code in reports, e.g. "Steane [[7,1,3]]".
	Name string
	// N is the number of physical qubits per block.
	N int
	// K is the number of logical qubits per block.
	K int
	// D is the claimed code distance; Distance certifies it.
	D int
	// Stabilizers holds the n-k generators, each with positive phase.
	Stabilizers []pauli.String
	// LogicalX and LogicalZ hold one representative per logical qubit.
	LogicalX, LogicalZ []pauli.String
}

// Validate checks the structural invariants of the code definition:
// operator widths and counts, positive generator phases, pairwise
// commutation of generators, generator independence, commutation of
// logicals with the group, and the symplectic pairing of the logicals
// (X̄_i anticommutes with Z̄_i and commutes with every other logical).
func (c *Code) Validate() error {
	if c.N <= 0 || c.K < 0 || c.K > c.N {
		return fmt.Errorf("codes: bad parameters n=%d k=%d", c.N, c.K)
	}
	if len(c.Stabilizers) != c.N-c.K {
		return fmt.Errorf("codes: %d generators, want n-k=%d", len(c.Stabilizers), c.N-c.K)
	}
	if len(c.LogicalX) != c.K || len(c.LogicalZ) != c.K {
		return fmt.Errorf("codes: %d logical X and %d logical Z, want k=%d",
			len(c.LogicalX), len(c.LogicalZ), c.K)
	}
	all := make([]pauli.String, 0, c.N+c.K)
	all = append(all, c.Stabilizers...)
	all = append(all, c.LogicalX...)
	all = append(all, c.LogicalZ...)
	for i, p := range all {
		if p.N != c.N {
			return fmt.Errorf("codes: operator %d has width %d, want %d", i, p.N, c.N)
		}
	}
	for i, g := range c.Stabilizers {
		if g.Phase != 0 {
			return fmt.Errorf("codes: generator %d has non-positive phase", i)
		}
		if g.IsIdentity() {
			return fmt.Errorf("codes: generator %d is the identity", i)
		}
		for j := i + 1; j < len(c.Stabilizers); j++ {
			if !g.Commutes(c.Stabilizers[j]) {
				return fmt.Errorf("codes: generators %d and %d anticommute", i, j)
			}
		}
	}
	if r := rank(vectors(c.Stabilizers), 2*c.N); r != len(c.Stabilizers) {
		return fmt.Errorf("codes: generators dependent: rank %d of %d", r, len(c.Stabilizers))
	}
	for i, l := range append(append([]pauli.String{}, c.LogicalX...), c.LogicalZ...) {
		for j, g := range c.Stabilizers {
			if !l.Commutes(g) {
				return fmt.Errorf("codes: logical %d anticommutes with generator %d", i, j)
			}
		}
	}
	for i := 0; i < c.K; i++ {
		for j := 0; j < c.K; j++ {
			wantAnti := i == j
			if c.LogicalX[i].Commutes(c.LogicalZ[j]) == wantAnti {
				return fmt.Errorf("codes: X̄_%d / Z̄_%d pairing violated", i, j)
			}
		}
		for j := i + 1; j < c.K; j++ {
			if !c.LogicalX[i].Commutes(c.LogicalX[j]) || !c.LogicalZ[i].Commutes(c.LogicalZ[j]) {
				return fmt.Errorf("codes: logicals %d and %d of the same type anticommute", i, j)
			}
		}
	}
	for i, l := range append(append([]pauli.String{}, c.LogicalX...), c.LogicalZ...) {
		if c.IsStabilizer(l) {
			return fmt.Errorf("codes: logical %d lies in the stabilizer group", i)
		}
	}
	return nil
}

// IsCSS reports whether every generator is purely X-type or purely
// Z-type (Calderbank–Shor–Steane structure). CSS codes admit
// transversal CNOT, the property the QLA relies on for logical gates.
func (c *Code) IsCSS() bool {
	for _, g := range c.Stabilizers {
		hasX, hasZ := false, false
		for q := 0; q < g.N; q++ {
			switch g.At(q) {
			case 'X':
				hasX = true
			case 'Z':
				hasZ = true
			case 'Y':
				return false
			}
		}
		if hasX && hasZ {
			return false
		}
	}
	return true
}

// SyndromeOf returns the syndrome of an error: bit i is set iff the
// error anticommutes with generator i. Errors differing by a stabilizer
// share a syndrome.
func (c *Code) SyndromeOf(err pauli.String) uint64 {
	if len(c.Stabilizers) > 64 {
		panic("codes: more than 64 generators")
	}
	var s uint64
	for i, g := range c.Stabilizers {
		if !err.Commutes(g) {
			s |= 1 << uint(i)
		}
	}
	return s
}

// IsStabilizer reports whether p lies in the stabilizer group up to
// phase (its symplectic vector is in the span of the generators).
func (c *Code) IsStabilizer(p pauli.String) bool {
	return inSpan(vectors(c.Stabilizers), vector(p), 2*c.N)
}

// IsLogical reports whether p is a non-trivial logical operator: it
// commutes with every generator but is not in the stabilizer group.
func (c *Code) IsLogical(p pauli.String) bool {
	return c.SyndromeOf(p) == 0 && !p.IsIdentity() && !c.IsStabilizer(p)
}

// Distance searches for the minimum weight of a non-trivial logical
// operator, scanning weights 1..maxWeight. It returns the weight found
// and true, or 0 and false if no logical exists within the budget (so
// the distance exceeds maxWeight).
func (c *Code) Distance(maxWeight int) (int, bool) {
	for w := 1; w <= maxWeight; w++ {
		if c.searchWeight(w, 0) {
			return w, true
		}
	}
	return 0, false
}

// TypedDistance is Distance restricted to errors built from a single
// Pauli letter ('X' or 'Z'). For asymmetric codes such as the 3-qubit
// repetition codes, the X- and Z-distances differ; the repetition code
// of the paper's Figure 4 has X-distance 3 but Z-distance 1.
func (c *Code) TypedDistance(letter byte, maxWeight int) (int, bool) {
	for w := 1; w <= maxWeight; w++ {
		if c.searchWeight(w, letter) {
			return w, true
		}
	}
	return 0, false
}

// searchWeight enumerates weight-w Paulis (all letters, or a single
// letter when typed != 0) and reports whether any is a logical.
func (c *Code) searchWeight(w int, typed byte) bool {
	positions := make([]int, w)
	letters := []byte{'X', 'Y', 'Z'}
	if typed != 0 {
		letters = []byte{typed}
	}
	var rec func(start, depth int) bool
	assign := make([]byte, w)
	var tryLetters func(depth int) bool
	tryLetters = func(depth int) bool {
		if depth == w {
			p := pauli.NewIdentity(c.N)
			for i, q := range positions {
				p.Set(q, assign[i])
			}
			return c.IsLogical(p)
		}
		for _, l := range letters {
			assign[depth] = l
			if tryLetters(depth + 1) {
				return true
			}
		}
		return false
	}
	rec = func(start, depth int) bool {
		if depth == w {
			return tryLetters(0)
		}
		for q := start; q <= c.N-(w-depth); q++ {
			positions[depth] = q
			if rec(q+1, depth+1) {
				return true
			}
		}
		return false
	}
	return rec(0, 0)
}

// PureErrors returns one "pure error" (destabilizer) per generator:
// D_i anticommutes with generator i, commutes with every other
// generator and with every logical representative. Applying the product
// of D_i over the set bits of a syndrome returns the state to the code
// space (possibly up to a stabilizer).
func (c *Code) PureErrors() ([]pauli.String, error) {
	m := len(c.Stabilizers)
	out := make([]pauli.String, m)
	// Constraint system: for unknown v, the symplectic product with a
	// fixed operator u is an ordinary GF(2) dot product with swap(u).
	ops := make([]pauli.String, 0, m+2*c.K)
	ops = append(ops, c.Stabilizers...)
	ops = append(ops, c.LogicalX...)
	ops = append(ops, c.LogicalZ...)
	rows := make([][]uint64, len(ops))
	for i, u := range ops {
		rows[i] = swapHalves(vector(u), c.N)
	}
	for i := 0; i < m; i++ {
		b := make([]bool, len(ops))
		b[i] = true
		v, err := solve(rows, b, 2*c.N)
		if err != nil {
			return nil, fmt.Errorf("codes: no pure error for generator %d: %w", i, err)
		}
		out[i] = fromVector(v, c.N)
	}
	return out, nil
}

// PrepareZero projects a stabilizer state into the code's logical
// |0…0⟩: it measures each generator and each logical Z, applying the
// precomputed fix-up operator whenever the outcome is -1. The state
// must have exactly c.N qubits. After return, every generator and
// every logical Z has expectation +1.
func (c *Code) PrepareZero(s *stabilizer.State) error {
	if s.N() != c.N {
		return fmt.Errorf("codes: state width %d, want %d", s.N(), c.N)
	}
	pure, err := c.PureErrors()
	if err != nil {
		return err
	}
	// MeasurePauli returns the outcome bit: 0 for the +1 eigenvalue,
	// 1 for -1. A -1 outcome is flipped by the pure error.
	for i, g := range c.Stabilizers {
		if s.MeasurePauli(g) == 1 {
			s.ApplyPauli(pure[i])
		}
	}
	for i, z := range c.LogicalZ {
		if s.MeasurePauli(z) == 1 {
			s.ApplyPauli(c.LogicalX[i])
		}
	}
	for i, g := range c.Stabilizers {
		if s.Expectation(g) != 1 {
			return fmt.Errorf("codes: generator %d not stabilized after preparation", i)
		}
	}
	for i, z := range c.LogicalZ {
		if s.Expectation(z) != 1 {
			return fmt.Errorf("codes: logical Z %d not stabilized after preparation", i)
		}
	}
	return nil
}

// --- GF(2) symplectic linear algebra -----------------------------------

// vector flattens a Pauli into its 2n-bit symplectic vector (x|z),
// packed into uint64 words. Phase is dropped.
func vector(p pauli.String) []uint64 {
	words := (2*p.N + 63) / 64
	v := make([]uint64, words)
	for q := 0; q < p.N; q++ {
		if p.XBit(q) {
			setBit(v, q)
		}
		if p.ZBit(q) {
			setBit(v, p.N+q)
		}
	}
	return v
}

// fromVector rebuilds a Pauli from a symplectic vector.
func fromVector(v []uint64, n int) pauli.String {
	p := pauli.NewIdentity(n)
	for q := 0; q < n; q++ {
		p.SetX(q, getBit(v, q))
		p.SetZ(q, getBit(v, n+q))
	}
	return p
}

// swapHalves exchanges the x and z halves of a symplectic vector, so
// that the symplectic product ⟨u,v⟩ becomes the dot product
// swap(u)·v.
func swapHalves(v []uint64, n int) []uint64 {
	out := make([]uint64, len(v))
	for q := 0; q < n; q++ {
		if getBit(v, q) {
			setBit(out, n+q)
		}
		if getBit(v, n+q) {
			setBit(out, q)
		}
	}
	return out
}

func vectors(ps []pauli.String) [][]uint64 {
	out := make([][]uint64, len(ps))
	for i, p := range ps {
		out[i] = vector(p)
	}
	return out
}

func setBit(v []uint64, i int)      { v[i/64] |= 1 << (uint(i) % 64) }
func getBit(v []uint64, i int) bool { return v[i/64]>>(uint(i)%64)&1 == 1 }

func xorInto(dst, src []uint64) {
	for i := range dst {
		dst[i] ^= src[i]
	}
}

func isZero(v []uint64) bool {
	for _, w := range v {
		if w != 0 {
			return false
		}
	}
	return true
}

func cloneRows(rows [][]uint64) [][]uint64 {
	out := make([][]uint64, len(rows))
	for i, r := range rows {
		out[i] = append([]uint64(nil), r...)
	}
	return out
}

// rank computes the GF(2) rank of the rows over the given bit width.
func rank(rows [][]uint64, bits int) int {
	m := cloneRows(rows)
	r := 0
	for col := 0; col < bits && r < len(m); col++ {
		pivot := -1
		for i := r; i < len(m); i++ {
			if getBit(m[i], col) {
				pivot = i
				break
			}
		}
		if pivot < 0 {
			continue
		}
		m[r], m[pivot] = m[pivot], m[r]
		for i := 0; i < len(m); i++ {
			if i != r && getBit(m[i], col) {
				xorInto(m[i], m[r])
			}
		}
		r++
	}
	return r
}

// inSpan reports whether v lies in the GF(2) row space of rows.
func inSpan(rows [][]uint64, v []uint64, bits int) bool {
	m := cloneRows(rows)
	res := append([]uint64(nil), v...)
	r := 0
	for col := 0; col < bits && r < len(m); col++ {
		pivot := -1
		for i := r; i < len(m); i++ {
			if getBit(m[i], col) {
				pivot = i
				break
			}
		}
		if pivot < 0 {
			continue
		}
		m[r], m[pivot] = m[pivot], m[r]
		for i := 0; i < len(m); i++ {
			if i != r && getBit(m[i], col) {
				xorInto(m[i], m[r])
			}
		}
		if getBit(res, col) {
			xorInto(res, m[r])
		}
		r++
	}
	return isZero(res)
}

var errInconsistent = errors.New("codes: inconsistent linear system")

// solve finds v with rows[i]·v = b[i] over GF(2), width bits. Free
// variables are set to zero. Returns errInconsistent if no solution.
func solve(rows [][]uint64, b []bool, bits int) ([]uint64, error) {
	m := cloneRows(rows)
	rhs := append([]bool(nil), b...)
	type pivotCol struct{ row, col int }
	var pivots []pivotCol
	r := 0
	for col := 0; col < bits && r < len(m); col++ {
		pivot := -1
		for i := r; i < len(m); i++ {
			if getBit(m[i], col) {
				pivot = i
				break
			}
		}
		if pivot < 0 {
			continue
		}
		m[r], m[pivot] = m[pivot], m[r]
		rhs[r], rhs[pivot] = rhs[pivot], rhs[r]
		for i := 0; i < len(m); i++ {
			if i != r && getBit(m[i], col) {
				xorInto(m[i], m[r])
				rhs[i] = rhs[i] != rhs[r]
			}
		}
		pivots = append(pivots, pivotCol{r, col})
		r++
	}
	for i := r; i < len(m); i++ {
		if rhs[i] && isZero(m[i]) {
			return nil, errInconsistent
		}
	}
	v := make([]uint64, (bits+63)/64)
	for _, pc := range pivots {
		if rhs[pc.row] {
			setBit(v, pc.col)
		}
	}
	return v, nil
}
