package circuit

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Parse reads the .qc text format:
//
//	# comment
//	qubits 5
//	h 0
//	cnot 0 1
//	measure 2
//	move 3 cells=120 corners=2
//
// The qubits directive must appear before any operation. Gate mnemonics
// match OpType.String(); blank lines and #-comments are ignored.
func Parse(r io.Reader) (*Circuit, error) {
	sc := bufio.NewScanner(r)
	var c *Circuit
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		mnem := strings.ToLower(fields[0])
		if mnem == "qubits" {
			if c != nil {
				return nil, fmt.Errorf("line %d: duplicate qubits directive", lineNo)
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("line %d: qubits takes one argument", lineNo)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("line %d: bad qubit count %q", lineNo, fields[1])
			}
			c = New(n)
			continue
		}
		if c == nil {
			return nil, fmt.Errorf("line %d: operation before qubits directive", lineNo)
		}
		if err := parseOp(c, mnem, fields[1:]); err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if c == nil {
		return nil, fmt.Errorf("circuit: empty input (missing qubits directive)")
	}
	return c, nil
}

// ParseString is Parse over a string.
func ParseString(s string) (*Circuit, error) {
	return Parse(strings.NewReader(s))
}

var mnemonic = func() map[string]OpType {
	m := make(map[string]OpType)
	for t := OpType(0); t < numOpTypes; t++ {
		m[t.String()] = t
	}
	return m
}()

func parseOp(c *Circuit, mnem string, args []string) error {
	t, ok := mnemonic[mnem]
	if !ok {
		return fmt.Errorf("unknown operation %q", mnem)
	}
	atoi := func(s string) (int, error) {
		v, err := strconv.Atoi(s)
		if err != nil {
			return 0, fmt.Errorf("bad integer %q", s)
		}
		return v, nil
	}
	guard := func(q int) error {
		if q < 0 || q >= c.N {
			return fmt.Errorf("qubit %d out of range [0,%d)", q, c.N)
		}
		return nil
	}
	switch {
	case t == Move:
		if len(args) < 1 {
			return fmt.Errorf("move needs a qubit")
		}
		q, err := atoi(args[0])
		if err != nil {
			return err
		}
		if err := guard(q); err != nil {
			return err
		}
		cells, corners := 0, 0
		for _, kv := range args[1:] {
			k, v, found := strings.Cut(kv, "=")
			if !found {
				return fmt.Errorf("bad move attribute %q", kv)
			}
			n, err := atoi(v)
			if err != nil || n < 0 {
				return fmt.Errorf("bad move attribute %q", kv)
			}
			switch k {
			case "cells":
				cells = n
			case "corners":
				corners = n
			default:
				return fmt.Errorf("unknown move attribute %q", k)
			}
		}
		c.Move(q, cells, corners)
	case t.IsTwoQubit():
		if len(args) != 2 {
			return fmt.Errorf("%s needs two qubits", mnem)
		}
		a, err := atoi(args[0])
		if err != nil {
			return err
		}
		b, err := atoi(args[1])
		if err != nil {
			return err
		}
		if err := guard(a); err != nil {
			return err
		}
		if err := guard(b); err != nil {
			return err
		}
		if a == b {
			return fmt.Errorf("%s with identical operands %d", mnem, a)
		}
		c.Ops = append(c.Ops, Op{Type: t, Q: [2]int{a, b}})
	default:
		if len(args) != 1 {
			return fmt.Errorf("%s needs one qubit", mnem)
		}
		q, err := atoi(args[0])
		if err != nil {
			return err
		}
		if err := guard(q); err != nil {
			return err
		}
		c.Ops = append(c.Ops, Op{Type: t, Q: [2]int{q, -1}})
	}
	return nil
}
