// Package circuit provides the quantum-circuit intermediate representation
// used by ARQ: a gate list over logical or physical qubits, with builders,
// an ASAP scheduler, latency accounting against ion-trap technology
// parameters, and execution on the stabilizer backend.
//
// The paper: "ARQ's input is based on the circuit model of quantum
// computation, which is the most common representation of quantum
// applications".
package circuit

import (
	"fmt"
	"strings"

	"qla/internal/iontrap"
	"qla/internal/stabilizer"
)

// OpType enumerates the operations ARQ understands. All unitaries are
// Clifford so the whole IR is simulable in polynomial time.
type OpType int

const (
	// Prep0 initializes a qubit to |0⟩.
	Prep0 OpType = iota
	// PrepPlus initializes a qubit to |+⟩.
	PrepPlus
	// H is the Hadamard gate.
	H
	// S is the phase gate diag(1,i).
	S
	// Sdg is the inverse phase gate.
	Sdg
	// X, Y, Z are the Pauli gates.
	X
	Y
	Z
	// CNOT is the controlled-NOT (Q[0] control, Q[1] target).
	CNOT
	// CZ is the controlled-Z.
	CZ
	// SWAP exchanges two qubits.
	SWAP
	// MeasureZ measures in the computational basis.
	MeasureZ
	// MeasureX measures in the X basis (H then MeasureZ).
	MeasureX
	// Move ballistically shuttles an ion; Cells/Corners give the path.
	Move
	// Cool is a sympathetic recooling step.
	Cool
	// Idle is an explicit wait of one single-gate slot (memory error site).
	Idle

	numOpTypes
)

var opNames = [...]string{
	Prep0: "prep0", PrepPlus: "prep+", H: "h", S: "s", Sdg: "sdg",
	X: "x", Y: "y", Z: "z", CNOT: "cnot", CZ: "cz", SWAP: "swap",
	MeasureZ: "measure", MeasureX: "measurex", Move: "move", Cool: "cool",
	Idle: "idle",
}

// String returns the textual mnemonic of the op type.
func (t OpType) String() string {
	if t >= 0 && int(t) < len(opNames) {
		return opNames[t]
	}
	return fmt.Sprintf("OpType(%d)", int(t))
}

// IsTwoQubit reports whether the op type takes two qubit operands.
func (t OpType) IsTwoQubit() bool { return t == CNOT || t == CZ || t == SWAP }

// IsMeasurement reports whether the op produces a classical bit.
func (t OpType) IsMeasurement() bool { return t == MeasureZ || t == MeasureX }

// OpClass maps the op type to its physical cost class.
func (t OpType) OpClass() iontrap.OpClass {
	switch t {
	case Prep0, PrepPlus:
		return iontrap.OpPrep
	case H, S, Sdg, X, Y, Z:
		return iontrap.OpSingle
	case CNOT, CZ, SWAP:
		return iontrap.OpDouble
	case MeasureZ, MeasureX:
		return iontrap.OpMeasure
	case Move:
		return iontrap.OpMoveCell
	case Cool:
		return iontrap.OpCool
	case Idle:
		return iontrap.OpMemory
	default:
		panic(fmt.Sprintf("circuit: no op class for %v", t))
	}
}

// Op is one operation. For unary ops Q[1] is -1.
type Op struct {
	Type    OpType
	Q       [2]int
	Cells   int    // Move: cells traversed
	Corners int    // Move: corner turns
	Label   string // optional annotation carried into pulse listings
}

// Qubits returns the operand qubits (1 or 2 of them).
func (o Op) Qubits() []int {
	if o.Q[1] < 0 {
		return []int{o.Q[0]}
	}
	return []int{o.Q[0], o.Q[1]}
}

func (o Op) String() string {
	switch {
	case o.Type == Move:
		return fmt.Sprintf("move %d cells=%d corners=%d", o.Q[0], o.Cells, o.Corners)
	case o.Q[1] >= 0:
		return fmt.Sprintf("%v %d %d", o.Type, o.Q[0], o.Q[1])
	default:
		return fmt.Sprintf("%v %d", o.Type, o.Q[0])
	}
}

// Circuit is an ordered list of operations over N qubits.
type Circuit struct {
	N   int
	Ops []Op
}

// New returns an empty circuit over n qubits.
func New(n int) *Circuit {
	if n <= 0 {
		panic("circuit: number of qubits must be positive")
	}
	return &Circuit{N: n}
}

func (c *Circuit) check(qs ...int) {
	for _, q := range qs {
		if q < 0 || q >= c.N {
			panic(fmt.Sprintf("circuit: qubit %d out of range [0,%d)", q, c.N))
		}
	}
}

func (c *Circuit) add1(t OpType, q int) *Circuit {
	c.check(q)
	c.Ops = append(c.Ops, Op{Type: t, Q: [2]int{q, -1}})
	return c
}

func (c *Circuit) add2(t OpType, a, b int) *Circuit {
	c.check(a, b)
	if a == b {
		panic("circuit: two-qubit op with identical operands")
	}
	c.Ops = append(c.Ops, Op{Type: t, Q: [2]int{a, b}})
	return c
}

// Builder methods (chainable).

// Prep0 appends |0⟩ preparation of q.
func (c *Circuit) Prep0(q int) *Circuit { return c.add1(Prep0, q) }

// PrepPlus appends |+⟩ preparation of q.
func (c *Circuit) PrepPlus(q int) *Circuit { return c.add1(PrepPlus, q) }

// H appends a Hadamard on q.
func (c *Circuit) H(q int) *Circuit { return c.add1(H, q) }

// S appends a phase gate on q.
func (c *Circuit) S(q int) *Circuit { return c.add1(S, q) }

// Sdg appends an inverse phase gate on q.
func (c *Circuit) Sdg(q int) *Circuit { return c.add1(Sdg, q) }

// X appends a Pauli X on q.
func (c *Circuit) X(q int) *Circuit { return c.add1(X, q) }

// Y appends a Pauli Y on q.
func (c *Circuit) Y(q int) *Circuit { return c.add1(Y, q) }

// Z appends a Pauli Z on q.
func (c *Circuit) Z(q int) *Circuit { return c.add1(Z, q) }

// CNOT appends a controlled-NOT (control ctl, target tgt).
func (c *Circuit) CNOT(ctl, tgt int) *Circuit { return c.add2(CNOT, ctl, tgt) }

// CZ appends a controlled-Z.
func (c *Circuit) CZ(a, b int) *Circuit { return c.add2(CZ, a, b) }

// SWAP appends a swap.
func (c *Circuit) SWAP(a, b int) *Circuit { return c.add2(SWAP, a, b) }

// MeasureZ appends a computational-basis measurement of q.
func (c *Circuit) MeasureZ(q int) *Circuit { return c.add1(MeasureZ, q) }

// MeasureX appends an X-basis measurement of q.
func (c *Circuit) MeasureX(q int) *Circuit { return c.add1(MeasureX, q) }

// Move appends a ballistic move of q across the given path.
func (c *Circuit) Move(q, cells, corners int) *Circuit {
	c.check(q)
	if cells < 0 || corners < 0 {
		panic("circuit: negative move path")
	}
	c.Ops = append(c.Ops, Op{Type: Move, Q: [2]int{q, -1}, Cells: cells, Corners: corners})
	return c
}

// Cool appends a recooling step on q.
func (c *Circuit) Cool(q int) *Circuit { return c.add1(Cool, q) }

// Idle appends an explicit wait slot on q.
func (c *Circuit) Idle(q int) *Circuit { return c.add1(Idle, q) }

// Append concatenates another circuit over the same qubit count.
func (c *Circuit) Append(other *Circuit) *Circuit {
	if other.N != c.N {
		panic("circuit: Append size mismatch")
	}
	c.Ops = append(c.Ops, other.Ops...)
	return c
}

// AppendMapped concatenates other, relabelling its qubit i to target[i].
func (c *Circuit) AppendMapped(other *Circuit, target []int) *Circuit {
	if len(target) != other.N {
		panic("circuit: AppendMapped target size mismatch")
	}
	c.check(target...)
	for _, op := range other.Ops {
		mapped := op
		mapped.Q[0] = target[op.Q[0]]
		if op.Q[1] >= 0 {
			mapped.Q[1] = target[op.Q[1]]
		}
		c.Ops = append(c.Ops, mapped)
	}
	return c
}

// CountOps returns the number of ops of each type.
func (c *Circuit) CountOps() map[OpType]int {
	m := make(map[OpType]int)
	for _, op := range c.Ops {
		m[op.Type]++
	}
	return m
}

// Measurements returns the number of measurement ops.
func (c *Circuit) Measurements() int {
	n := 0
	for _, op := range c.Ops {
		if op.Type.IsMeasurement() {
			n++
		}
	}
	return n
}

// Layers partitions the ops into ASAP time-steps: each op is placed in the
// earliest layer after the last op touching any of its qubits.
func (c *Circuit) Layers() [][]Op {
	level := make([]int, c.N)
	var layers [][]Op
	for _, op := range c.Ops {
		l := 0
		for _, q := range op.Qubits() {
			if level[q] > l {
				l = level[q]
			}
		}
		for len(layers) <= l {
			layers = append(layers, nil)
		}
		layers[l] = append(layers[l], op)
		for _, q := range op.Qubits() {
			level[q] = l + 1
		}
	}
	return layers
}

// Depth returns the number of ASAP layers.
func (c *Circuit) Depth() int { return len(c.Layers()) }

// Duration returns the critical-path latency of the circuit in seconds
// under the given technology parameters, assuming unlimited classical
// control parallelism (ops on disjoint qubits overlap).
func (c *Circuit) Duration(p iontrap.Params) float64 {
	avail := make([]float64, c.N)
	total := 0.0
	for _, op := range c.Ops {
		start := 0.0
		for _, q := range op.Qubits() {
			if avail[q] > start {
				start = avail[q]
			}
		}
		var dur float64
		if op.Type == Move {
			dur = p.MoveTime(op.Cells, op.Corners)
		} else {
			dur = p.Time[op.Type.OpClass()]
		}
		end := start + dur
		for _, q := range op.Qubits() {
			avail[q] = end
		}
		if end > total {
			total = end
		}
	}
	return total
}

// SerialDuration returns the latency when every op runs sequentially (one
// laser, SIMD-less control).
func (c *Circuit) SerialDuration(p iontrap.Params) float64 {
	total := 0.0
	for _, op := range c.Ops {
		if op.Type == Move {
			total += p.MoveTime(op.Cells, op.Corners)
		} else {
			total += p.Time[op.Type.OpClass()]
		}
	}
	return total
}

// Run executes the circuit on a fresh stabilizer state and returns the
// measurement outcomes in program order.
func (c *Circuit) Run(seed uint64) []int {
	return c.RunOn(stabilizer.NewSeeded(c.N, seed))
}

// RunOn executes the circuit on the supplied state (which must have at
// least N qubits) and returns measurement outcomes in program order.
func (c *Circuit) RunOn(s *stabilizer.State) []int {
	if s.N() < c.N {
		panic("circuit: state too small for circuit")
	}
	var out []int
	for _, op := range c.Ops {
		switch op.Type {
		case Prep0:
			s.Reset(op.Q[0])
		case PrepPlus:
			s.Reset(op.Q[0])
			s.H(op.Q[0])
		case H:
			s.H(op.Q[0])
		case S:
			s.S(op.Q[0])
		case Sdg:
			s.Sdg(op.Q[0])
		case X:
			s.X(op.Q[0])
		case Y:
			s.Y(op.Q[0])
		case Z:
			s.Z(op.Q[0])
		case CNOT:
			s.CNOT(op.Q[0], op.Q[1])
		case CZ:
			s.CZ(op.Q[0], op.Q[1])
		case SWAP:
			s.SWAP(op.Q[0], op.Q[1])
		case MeasureZ:
			out = append(out, s.Measure(op.Q[0]))
		case MeasureX:
			s.H(op.Q[0])
			out = append(out, s.Measure(op.Q[0]))
		case Move, Cool, Idle:
			// No logical effect in the noiseless backend.
		default:
			panic(fmt.Sprintf("circuit: cannot execute %v", op.Type))
		}
	}
	return out
}

// String renders the circuit in the .qc text format accepted by Parse.
func (c *Circuit) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "qubits %d\n", c.N)
	for _, op := range c.Ops {
		sb.WriteString(op.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}
