package circuit

import (
	"math"
	"strings"
	"testing"

	"qla/internal/iontrap"
	"qla/internal/stabilizer"
)

func TestBuilderAndRun(t *testing.T) {
	c := New(2)
	c.H(0).CNOT(0, 1).MeasureZ(0).MeasureZ(1)
	for seed := uint64(1); seed < 20; seed++ {
		out := c.Run(seed)
		if len(out) != 2 {
			t.Fatalf("got %d outcomes", len(out))
		}
		if out[0] != out[1] {
			t.Fatalf("Bell measurement uncorrelated: %v", out)
		}
	}
}

func TestMeasureX(t *testing.T) {
	c := New(1)
	c.PrepPlus(0).MeasureX(0)
	if out := c.Run(1); out[0] != 0 {
		t.Errorf("X-basis measurement of |+> = %d, want 0", out[0])
	}
	c2 := New(1)
	c2.PrepPlus(0).Z(0).MeasureX(0)
	if out := c2.Run(1); out[0] != 1 {
		t.Errorf("X-basis measurement of |-> = %d, want 1", out[0])
	}
}

func TestLayersDepth(t *testing.T) {
	c := New(4)
	c.H(0).H(1).H(2).H(3)   // layer 0
	c.CNOT(0, 1).CNOT(2, 3) // layer 1
	c.CNOT(1, 2)            // layer 2
	layers := c.Layers()
	if len(layers) != 3 {
		t.Fatalf("depth = %d, want 3", len(layers))
	}
	if len(layers[0]) != 4 || len(layers[1]) != 2 || len(layers[2]) != 1 {
		t.Errorf("layer sizes = %d,%d,%d", len(layers[0]), len(layers[1]), len(layers[2]))
	}
	if c.Depth() != 3 {
		t.Errorf("Depth() = %d", c.Depth())
	}
}

func TestDurationParallelVsSerial(t *testing.T) {
	p := iontrap.Expected()
	c := New(4)
	c.H(0).H(1).H(2).H(3)
	// Four parallel 1µs gates: critical path 1µs, serial 4µs.
	if d := c.Duration(p); math.Abs(d-1e-6) > 1e-12 {
		t.Errorf("parallel duration = %g, want 1µs", d)
	}
	if d := c.SerialDuration(p); math.Abs(d-4e-6) > 1e-12 {
		t.Errorf("serial duration = %g, want 4µs", d)
	}
	// A CNOT chain serializes.
	c2 := New(3)
	c2.CNOT(0, 1).CNOT(1, 2)
	if d := c2.Duration(p); math.Abs(d-20e-6) > 1e-12 {
		t.Errorf("chained CNOT duration = %g, want 20µs", d)
	}
}

func TestDurationMove(t *testing.T) {
	p := iontrap.Expected()
	c := New(1)
	c.Move(0, 1000, 2)
	want := p.MoveTime(1000, 2)
	if d := c.Duration(p); math.Abs(d-want) > 1e-12 {
		t.Errorf("move duration = %g, want %g", d, want)
	}
}

func TestAppendMapped(t *testing.T) {
	inner := New(2)
	inner.H(0).CNOT(0, 1)
	outer := New(5)
	outer.AppendMapped(inner, []int{3, 1})
	if len(outer.Ops) != 2 {
		t.Fatalf("ops = %d", len(outer.Ops))
	}
	if outer.Ops[0].Q[0] != 3 {
		t.Errorf("H mapped to %d, want 3", outer.Ops[0].Q[0])
	}
	if outer.Ops[1].Q[0] != 3 || outer.Ops[1].Q[1] != 1 {
		t.Errorf("CNOT mapped to %v", outer.Ops[1].Q)
	}
}

func TestParseRoundTrip(t *testing.T) {
	src := `# a test circuit
qubits 3
prep0 0
h 0
cnot 0 1
move 2 cells=120 corners=2
measure 0
measurex 1
`
	c, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if c.N != 3 || len(c.Ops) != 6 {
		t.Fatalf("parsed %d qubits, %d ops", c.N, len(c.Ops))
	}
	if c.Ops[3].Type != Move || c.Ops[3].Cells != 120 || c.Ops[3].Corners != 2 {
		t.Errorf("move parsed as %+v", c.Ops[3])
	}
	// Round trip through String.
	c2, err := ParseString(c.String())
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if c2.String() != c.String() {
		t.Errorf("round trip mismatch:\n%s\nvs\n%s", c.String(), c2.String())
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"h 0",                         // op before qubits
		"qubits 0",                    // bad count
		"qubits 2\nfrobnicate 0",      // unknown op
		"qubits 2\ncnot 0",            // missing operand
		"qubits 2\ncnot 0 0",          // identical operands
		"qubits 2\nh 5",               // out of range
		"qubits 2\nqubits 2",          // duplicate directive
		"qubits 2\nmove 0 cells=x",    // bad attribute
		"qubits 2\nmove 0 sideways=1", // unknown attribute
		"",                            // empty
	}
	for _, src := range bad {
		if _, err := ParseString(src); err == nil {
			t.Errorf("ParseString(%q) should fail", src)
		}
	}
}

func TestCountOps(t *testing.T) {
	c := New(3)
	c.H(0).H(1).CNOT(0, 1).MeasureZ(0)
	counts := c.CountOps()
	if counts[H] != 2 || counts[CNOT] != 1 || counts[MeasureZ] != 1 {
		t.Errorf("counts = %v", counts)
	}
	if c.Measurements() != 1 {
		t.Errorf("Measurements = %d", c.Measurements())
	}
}

func TestRunOnSharedState(t *testing.T) {
	s := stabilizer.NewSeeded(4, 7)
	prep := New(4)
	prep.X(2)
	prep.RunOn(s)
	meas := New(4)
	meas.MeasureZ(2)
	if out := meas.RunOn(s); out[0] != 1 {
		t.Errorf("state not shared across RunOn calls")
	}
}

func TestStringFormat(t *testing.T) {
	c := New(2)
	c.H(0).CNOT(0, 1)
	s := c.String()
	if !strings.HasPrefix(s, "qubits 2\n") || !strings.Contains(s, "cnot 0 1") {
		t.Errorf("String() = %q", s)
	}
}

func TestBuilderPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s should panic", name)
			}
		}()
		fn()
	}
	c := New(2)
	mustPanic("out of range", func() { c.H(2) })
	mustPanic("cnot self", func() { c.CNOT(1, 1) })
	mustPanic("negative move", func() { c.Move(0, -1, 0) })
	mustPanic("append mismatch", func() { c.Append(New(3)) })
}
