package tilegrid_test

import (
	"math"
	"testing"

	"qla/internal/iontrap"
	"qla/internal/netsim"
	"qla/internal/qccd"
	"qla/internal/tilegrid"
)

// The geometry extraction turned qccd.Pos and netsim.Node into aliases
// of tilegrid.Coord. These tests pin simulator outputs recorded before
// the extraction, so any behavioural drift in the shared geometry shows
// up as a diff against the pre-refactor numbers.

func TestAliasesShareCoord(t *testing.T) {
	var c tilegrid.Coord
	var p qccd.Pos = c    // compiles only if Pos aliases Coord
	var n netsim.Node = p // compiles only if Node aliases Coord
	if n != (netsim.Node{}) {
		t.Fatal("zero coordinates differ across aliases")
	}
}

func TestNetsimNumbersUnchanged(t *testing.T) {
	rows, err := netsim.DefaultExperiment([]int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		bandwidth, scheduled, retries, beats int
		frac, util                           float64
		overlap                              bool
	}{
		{1, 167, 62, 2, 0.835, 0.534868, true},
		{2, 199, 2, 2, 0.995, 0.229605, true},
		{4, 200, 0, 1, 1.0, 0.101974, true},
	}
	if len(rows) != len(want) {
		t.Fatalf("got %d rows, want %d", len(rows), len(want))
	}
	for i, w := range want {
		r := rows[i]
		if r.Bandwidth != w.bandwidth || r.Requests != 200 || r.Scheduled != w.scheduled ||
			r.Retries != w.retries || r.BeatsUsed != w.beats || r.Overlapped != w.overlap {
			t.Errorf("bw=%d row drifted: %+v", w.bandwidth, r)
		}
		if math.Abs(r.ScheduledFrac-w.frac) > 1e-9 || math.Abs(r.Utilization-w.util) > 1e-6 {
			t.Errorf("bw=%d fractions drifted: frac=%.6f util=%.6f, want %.6f/%.6f",
				w.bandwidth, r.ScheduledFrac, r.Utilization, w.frac, w.util)
		}
	}
}

func TestQCCDNumbersUnchanged(t *testing.T) {
	want := []struct {
		sep      int
		makespan float64
		cells    int
	}{
		{12, 7.156e-05, 392},
		{100, 7.332e-05, 1624},
	}
	for _, w := range want {
		rep, err := qccd.InterBlockTransversalGate(7, w.sep, iontrap.Expected())
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(rep.Makespan-w.makespan) > 1e-12 {
			t.Errorf("sep=%d makespan = %.6e, want %.6e", w.sep, rep.Makespan, w.makespan)
		}
		if rep.Ions != 7 || rep.MaxCorners != 2 || rep.Stats.Moves != 14 ||
			rep.Stats.Cells != w.cells || rep.Stats.Corners != 28 ||
			rep.Stats.Stalls != 0 || rep.Stats.Gates2 != 7 || rep.Stats.Cools != 7 {
			t.Errorf("sep=%d report drifted: %+v", w.sep, rep)
		}
	}
}
