package tilegrid

import "testing"

func TestManhattanAndAdjacency(t *testing.T) {
	a, b := Coord{1, 2}, Coord{4, 0}
	if got := Manhattan(a, b); got != 5 {
		t.Errorf("Manhattan(%v,%v) = %d, want 5", a, b, got)
	}
	if !a.Adjacent(Coord{1, 3}) || !a.Adjacent(Coord{0, 2}) {
		t.Error("4-neighbours not adjacent")
	}
	if a.Adjacent(a) || a.Adjacent(Coord{2, 3}) {
		t.Error("self or diagonal reported adjacent")
	}
}

func TestRectIndexRoundTrip(t *testing.T) {
	r := Rect{W: 5, H: 3}
	if r.Tiles() != 15 {
		t.Fatalf("Tiles = %d, want 15", r.Tiles())
	}
	for i := 0; i < r.Tiles(); i++ {
		c := r.Coord(i)
		if !r.Contains(c) {
			t.Fatalf("Coord(%d) = %v outside %v", i, c, r)
		}
		if back := r.Index(c); back != i {
			t.Fatalf("Index(Coord(%d)) = %d", i, back)
		}
	}
	for _, c := range []Coord{{-1, 0}, {5, 0}, {0, 3}, {0, -1}} {
		if r.Contains(c) {
			t.Errorf("Contains(%v) = true on %v", c, r)
		}
	}
}

func TestRectNeighbors(t *testing.T) {
	r := Rect{W: 3, H: 3}
	corner := r.Neighbors(Coord{0, 0}, nil)
	if len(corner) != 2 {
		t.Errorf("corner has %d neighbours, want 2: %v", len(corner), corner)
	}
	center := r.Neighbors(Coord{1, 1}, nil)
	want := []Coord{{2, 1}, {0, 1}, {1, 2}, {1, 0}} // Dirs4 order
	if len(center) != len(want) {
		t.Fatalf("center has %d neighbours, want 4", len(center))
	}
	for i, c := range center {
		if c != want[i] {
			t.Errorf("neighbour %d = %v, want %v (Dirs4 order)", i, c, want[i])
		}
	}
}

func TestDirectedLinks(t *testing.T) {
	// 2x2: 4 undirected adjacencies -> 8 directed links.
	if got := (Rect{W: 2, H: 2}).DirectedLinks(); got != 8 {
		t.Errorf("2x2 DirectedLinks = %d, want 8", got)
	}
	if got := (Rect{W: 4, H: 1}).DirectedLinks(); got != 6 {
		t.Errorf("4x1 DirectedLinks = %d, want 6", got)
	}
}
