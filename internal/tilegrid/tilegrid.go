// Package tilegrid holds the rectangular-grid geometry shared by every
// layer of the QLA model that walks a 2-D mesh: the QCCD cell map
// (internal/qccd), the island interconnect scheduler (internal/netsim),
// and the cycle-level data-movement simulator (internal/cyclesim). The
// paper's substrate is uniformly a grid — of 20 µm cells at the bottom,
// of logical-qubit tiles at the top — so coordinates, 4-adjacency and
// Manhattan distance are defined once here and aliased or embedded by
// the consumers.
package tilegrid

// Coord is a position on a rectangular grid: a cell for qccd, an island
// for netsim, a logical-qubit tile for cyclesim. The exported field
// names (and the absence of JSON tags) are part of the wire format of
// every payload that embeds one.
type Coord struct {
	X, Y int
}

// Dirs4 lists the four mesh directions in the canonical order +X, -X,
// +Y, -Y. Routing code indexes lanes by position in this list.
var Dirs4 = [4]Coord{{1, 0}, {-1, 0}, {0, 1}, {0, -1}}

// Add returns c translated by d.
func (c Coord) Add(d Coord) Coord { return Coord{c.X + d.X, c.Y + d.Y} }

// Adjacent reports whether two coordinates are 4-neighbours.
func (c Coord) Adjacent(o Coord) bool { return Manhattan(c, o) == 1 }

// Manhattan returns the L1 distance between two coordinates — the hop
// count of any minimal mesh route.
func Manhattan(a, b Coord) int {
	return abs(a.X-b.X) + abs(a.Y-b.Y)
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// Rect is a W×H grid of coordinates (0,0)..(W-1,H-1).
type Rect struct {
	W, H int
}

// Contains reports whether c lies on the grid.
func (r Rect) Contains(c Coord) bool {
	return c.X >= 0 && c.X < r.W && c.Y >= 0 && c.Y < r.H
}

// Tiles returns the number of grid positions.
func (r Rect) Tiles() int { return r.W * r.H }

// Index returns the row-major index of c. The caller guarantees
// r.Contains(c).
func (r Rect) Index(c Coord) int { return c.Y*r.W + c.X }

// Coord inverts Index.
func (r Rect) Coord(i int) Coord { return Coord{i % r.W, i / r.W} }

// DirectedLinks returns the number of directed nearest-neighbour links:
// each undirected adjacency contributes one link per direction.
func (r Rect) DirectedLinks() int {
	return 2 * ((r.W-1)*r.H + r.W*(r.H-1))
}

// Neighbors appends c's in-grid 4-neighbours to buf (in Dirs4 order)
// and returns the extended slice.
func (r Rect) Neighbors(c Coord, buf []Coord) []Coord {
	for _, d := range Dirs4 {
		if n := c.Add(d); r.Contains(n) {
			buf = append(buf, n)
		}
	}
	return buf
}
