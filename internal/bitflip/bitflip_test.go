package bitflip

import (
	"testing"

	"qla/internal/stabilizer"
	"qla/internal/steane"
)

func TestEncoderStabilized(t *testing.T) {
	s := stabilizer.New(N)
	EncodeZero().RunOn(s)
	for i, g := range Stabilizers() {
		if e := s.Expectation(g); e != 1 {
			t.Errorf("<generator %d> = %d after encoding", i, e)
		}
	}
	if e := s.Expectation(LogicalZ()); e != 1 {
		t.Errorf("<Z_L> = %d on |0>_L", e)
	}
}

func TestSingleXErrorsCorrected(t *testing.T) {
	for q := 0; q < N; q++ {
		var w [N]int
		w[q] = 1
		if DecodePosition(Syndrome(w)) != q {
			t.Errorf("X on qubit %d misdecoded", q)
		}
		if DecodeBlock(w) != 0 {
			t.Errorf("single X on qubit %d caused logical failure", q)
		}
	}
	var clean [N]int
	if Syndrome(clean) != 0 || DecodeBlock(clean) != 0 {
		t.Error("clean word should decode trivially")
	}
}

func TestDoubleXErrorsFail(t *testing.T) {
	// Majority vote flips on any two errors: distance 3 against X.
	pairs := [][2]int{{0, 1}, {0, 2}, {1, 2}}
	for _, p := range pairs {
		var w [N]int
		w[p[0]], w[p[1]] = 1, 1
		if DecodeBlock(w) != 1 {
			t.Errorf("double error %v should defeat the majority vote", p)
		}
	}
}

func TestZErrorsInvisible(t *testing.T) {
	// The ablation: no Z-error pattern produces a syndrome.
	for mask := 1; mask < 8; mask++ {
		var w [N]int
		for q := 0; q < N; q++ {
			w[q] = (mask >> q) & 1
		}
		if CorrectsZ(w) {
			t.Errorf("Z pattern %03b unexpectedly detected", mask)
		}
	}
}

func TestZErrorBreaksLogicalStateOnBackend(t *testing.T) {
	// End-to-end on the exact backend: encode |+>_L (logical X
	// eigenstate), hit one qubit with Z, verify the logical X expectation
	// flips while every stabilizer stays +1 — an undetectable logical
	// error, the reason the QLA uses a CSS code.
	s := stabilizer.New(N)
	s.H(0) // |+> on the input qubit
	EncodeZero().RunOn(s)
	if e := s.Expectation(LogicalX()); e != 1 {
		t.Fatalf("<X_L> = %d on encoded |+>", e)
	}
	s.Z(0)
	for i, g := range Stabilizers() {
		if e := s.Expectation(g); e != 1 {
			t.Errorf("stabilizer %d saw the Z error (%d); it should not", i, e)
		}
	}
	if e := s.Expectation(LogicalX()); e != -1 {
		t.Errorf("<X_L> = %d after Z error, want -1 (undetected logical flip)", e)
	}
}

func TestComparisonWithSteane(t *testing.T) {
	// The Steane code detects every single Z error that the repetition
	// code misses — the quantitative reason for the [[7,1,3]] choice.
	missedByBitflip := 0
	for q := 0; q < N; q++ {
		var w [N]int
		w[q] = 1
		if !CorrectsZ(w) {
			missedByBitflip++
		}
	}
	if missedByBitflip != 3 {
		t.Errorf("repetition code missed %d/3 single Z errors, want all 3", missedByBitflip)
	}
	for q := 0; q < steane.N; q++ {
		var w [steane.N]int
		w[q] = 1
		// In the Steane code, Z errors are decoded by the X-stabilizers
		// with the same Hamming syndrome arithmetic.
		if steane.DecodePosition(steane.Syndrome(w)) != q {
			t.Errorf("Steane missed a single Z error on qubit %d", q)
		}
	}
}
