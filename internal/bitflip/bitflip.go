// Package bitflip implements the 3-qubit bit-flip repetition code that
// Figure 4 of the paper uses to illustrate the QLA building-block
// structure ("For simplicity, Figure 4 is drawn to show the level 1 blocks
// of a 3-bit error correcting code, but the structure is easily extended
// to 7-bit and larger codes").
//
// It doubles as the baseline ablation for the Steane [[7,1,3]] choice: the
// repetition code corrects X errors with less hardware but is transparent
// to Z errors, so a depolarizing channel defeats it — demonstrated by the
// package tests against the stabilizer backend.
package bitflip

import (
	"fmt"

	"qla/internal/circuit"
	"qla/internal/pauli"
)

// N is the number of physical qubits per block.
const N = 3

// Stabilizers returns the two generators Z0Z1 and Z1Z2.
func Stabilizers() []pauli.String {
	return []pauli.String{
		pauli.MustParse("+ZZI"),
		pauli.MustParse("+IZZ"),
	}
}

// LogicalX returns X⊗3 and LogicalZ returns Z on any single qubit (weight
// 1 — the code has distance 1 against phase flips, its fatal weakness).
func LogicalX() pauli.String { return pauli.MustParse("+XXX") }

// LogicalZ returns the weight-1 logical Z operator.
func LogicalZ() pauli.String { return pauli.MustParse("+ZII") }

// EncodeZero returns the encoder circuit |000⟩ -> |0⟩_L (two CNOT
// fan-outs; for the repetition code |0⟩_L = |000⟩ so the circuit encodes
// an arbitrary qubit-0 state by copying its basis amplitudes).
func EncodeZero() *circuit.Circuit {
	c := circuit.New(N)
	c.CNOT(0, 1)
	c.CNOT(0, 2)
	return c
}

// Syndrome computes the two-bit syndrome of a 3-bit X-error word: bit 1 =
// parity(q0,q1), bit 0 = parity(q1,q2).
func Syndrome(bits [N]int) int {
	s01 := (bits[0] ^ bits[1]) & 1
	s12 := (bits[1] ^ bits[2]) & 1
	return s01<<1 | s12
}

// DecodePosition maps a syndrome to the qubit to correct (-1 = none).
func DecodePosition(syndrome int) int {
	switch syndrome {
	case 0:
		return -1
	case 0b10:
		return 0
	case 0b11:
		return 1
	case 0b01:
		return 2
	default:
		panic(fmt.Sprintf("bitflip: syndrome %d out of range", syndrome))
	}
}

// DecodeBlock corrects a 3-bit X-error word and returns 1 when the
// residual is the logical operator (majority vote failure: ≥2 flips).
func DecodeBlock(bits [N]int) int {
	if pos := DecodePosition(Syndrome(bits)); pos >= 0 {
		bits[pos] ^= 1
	}
	return bits[0] & 1 // all three now agree
}

// CorrectsZ reports whether the code detects the given Z-error word: it
// never does (Z errors commute with both stabilizers), which is the
// ablation headline.
func CorrectsZ(bits [N]int) bool {
	z := pauli.NewIdentity(N)
	for q, b := range bits {
		if b&1 == 1 {
			z.Set(q, 'Z')
		}
	}
	for _, g := range Stabilizers() {
		if !z.Commutes(g) {
			return true // would show a syndrome
		}
	}
	return false
}
