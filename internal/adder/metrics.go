package adder

import "qla/internal/revcirc"

// Metrics summarizes an adder circuit for the architecture model: the
// QLA latency model consumes the Toffoli critical path (each Toffoli is
// a fault-tolerant construction of ~21 error-correction steps), and the
// floorplanner consumes the wire count.
type Metrics struct {
	// N is the operand width in bits.
	N int
	// Width is the total number of logical qubits the circuit occupies.
	Width int
	// Counts tallies gates by kind.
	Counts revcirc.Counts
	// Depth is the full critical path counting every gate.
	Depth int
	// ToffoliDepth is the critical path counting only Toffoli gates,
	// the quantity the paper models as 4*log2(n) for the QCLA.
	ToffoliDepth int
}

func measure(c *revcirc.Circuit, lay Layout) Metrics {
	return Metrics{
		N:            lay.N,
		Width:        lay.Width,
		Counts:       c.Counts(),
		Depth:        c.Depth(),
		ToffoliDepth: c.ToffoliDepth(),
	}
}

// MeasureRipple builds and measures the ripple-carry adder.
func MeasureRipple(n int) Metrics {
	c, lay := Ripple(n)
	return measure(c, lay)
}

// MeasureCLA builds and measures the carry-lookahead adder.
func MeasureCLA(n int) Metrics {
	c, lay := CLA(n)
	return measure(c, lay)
}

// Comparison pairs the two adders at one operand width — one row of the
// ablation study behind the paper's adder choice (Section 5: the QCLA is
// "most optimized for time of computation rather than system size").
type Comparison struct {
	Ripple, CLA Metrics
	// DepthRatio is ripple Toffoli depth over CLA Toffoli depth: how
	// many times faster the lookahead adder's critical path is.
	DepthRatio float64
	// WidthRatio is CLA width over ripple width: the qubit price paid.
	WidthRatio float64
}

// Compare measures both adders at width n.
func Compare(n int) Comparison {
	r := MeasureRipple(n)
	c := MeasureCLA(n)
	return Comparison{
		Ripple:     r,
		CLA:        c,
		DepthRatio: float64(r.ToffoliDepth) / float64(c.ToffoliDepth),
		WidthRatio: float64(c.Width) / float64(r.Width),
	}
}
