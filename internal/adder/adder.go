// Package adder implements the quantum adder circuits the QLA paper's
// Shor workload is built from, as explicit reversible circuits over the
// NOT/CNOT/Toffoli alphabet (internal/revcirc).
//
// Two in-place adders with identical interfaces are provided:
//
//   - Ripple: the Cuccaro–Draper–Kutin–Moulton ripple-carry adder, the
//     linear-depth baseline. Toffoli depth 2n.
//   - CLA: the Draper–Kutin–Rains–Svore quantum carry-lookahead adder
//     (quant-ph/0406142), the adder the paper selects for Table 2
//     because it is "most optimized for time of computation rather than
//     system size". Toffoli depth Θ(log n); the paper's latency model
//     charges 4·log2(n) Toffoli time steps per addition.
//
// Both compute b := (a + b + cin) mod 2^n in place, XOR the carry-out
// onto a dedicated wire, restore a and every ancilla, and are verified
// exhaustively for small widths and randomly for large widths against
// integer addition. The measured Toffoli depths back the paper's model:
// the CLA critical path grows logarithmically and overtakes the ripple
// baseline by n = 8, which is the structural fact behind the paper's
// choice of the QCLA for modular exponentiation.
package adder

import (
	"fmt"

	"qla/internal/revcirc"
)

// Layout names the wires of an adder circuit so callers can pack inputs
// and unpack results.
type Layout struct {
	// N is the operand width in bits.
	N int
	// A and B are the operand wires, least-significant bit first.
	// After execution B holds the low n bits of the sum; A is restored.
	A, B []int
	// Cin is the carry-in wire, or -1 if the adder has none.
	Cin int
	// Cout is the wire the carry-out is XORed onto.
	Cout int
	// Anc lists ancilla wires; the adder restores all of them to their
	// input values (callers supply zeros).
	Anc []int
	// Width is the total number of wires in the circuit.
	Width int
}

// Pack builds the circuit input word for operands a, b and carry-in.
// Operands must fit in n bits. Ancilla wires are zero.
func (l Layout) Pack(a, b uint64, cin bool) uint64 {
	if l.N < 64 && (a >= 1<<uint(l.N) || b >= 1<<uint(l.N)) {
		panic(fmt.Sprintf("adder: operand exceeds %d bits", l.N))
	}
	var x uint64
	for i := 0; i < l.N; i++ {
		x |= (a >> uint(i) & 1) << uint(l.A[i])
		x |= (b >> uint(i) & 1) << uint(l.B[i])
	}
	if cin {
		if l.Cin < 0 {
			panic("adder: adder has no carry-in wire")
		}
		x |= 1 << uint(l.Cin)
	}
	return x
}

// Unpack extracts (aOut, sum, carry) from the circuit output word and
// reports whether every ancilla wire was restored to zero. The carry-in
// wire is not inspected: it is restored to its input value, which the
// caller knows.
func (l Layout) Unpack(x uint64) (aOut, sum uint64, carry, ancClean bool) {
	for i := 0; i < l.N; i++ {
		aOut |= (x >> uint(l.A[i]) & 1) << uint(i)
		sum |= (x >> uint(l.B[i]) & 1) << uint(i)
	}
	carry = x>>uint(l.Cout)&1 == 1
	ancClean = true
	for _, w := range l.Anc {
		if x>>uint(w)&1 == 1 {
			ancClean = false
		}
	}
	return aOut, sum, carry, ancClean
}

// Ripple builds the Cuccaro ripple-carry adder for n-bit operands.
//
// Wire plan: cin, a[0..n-1], b[0..n-1], z. The circuit applies the MAJ
// chain forward, copies the carry-out onto z, and unwinds with UMA,
// leaving b = a+b+cin mod 2^n, z ^= carry, a and cin restored.
func Ripple(n int) (*revcirc.Circuit, Layout) {
	if n <= 0 {
		panic(fmt.Sprintf("adder: non-positive width %d", n))
	}
	lay := Layout{
		N:     n,
		Cin:   0,
		A:     make([]int, n),
		B:     make([]int, n),
		Cout:  2*n + 1,
		Width: 2*n + 2,
	}
	for i := 0; i < n; i++ {
		lay.A[i] = 1 + i
		lay.B[i] = 1 + n + i
	}
	c := revcirc.New(lay.Width)

	// MAJ(carry, b, a): after it, a holds MAJ(c,b,a) = carry-out of the
	// bit position, b holds a XOR b, carry holds a XOR c.
	maj := func(carry, b, a int) {
		c.CNOT(a, b)
		c.CNOT(a, carry)
		c.Toffoli(carry, b, a)
	}
	// UMA(carry, b, a): inverse of MAJ followed by the sum write; after
	// it, a and carry are restored and b holds the sum bit.
	uma := func(carry, b, a int) {
		c.Toffoli(carry, b, a)
		c.CNOT(a, carry)
		c.CNOT(carry, b)
	}

	carryOf := func(i int) int {
		if i == 0 {
			return lay.Cin
		}
		return lay.A[i-1]
	}
	for i := 0; i < n; i++ {
		maj(carryOf(i), lay.B[i], lay.A[i])
	}
	c.CNOT(lay.A[n-1], lay.Cout)
	for i := n - 1; i >= 0; i-- {
		uma(carryOf(i), lay.B[i], lay.A[i])
	}
	return c, lay
}

// CLA builds the Draper–Kutin–Rains–Svore in-place carry-lookahead
// adder for n-bit operands: b := (a+b) mod 2^n, Cout ^= carry, a and all
// ancilla restored. There is no carry-in wire (Cin = -1), matching the
// out-of-the-paper QCLA used by the QLA latency model.
//
// Structure (quant-ph/0406142, section 4): generate/propagate bits are
// computed with one Toffoli layer and one CNOT layer; carries are
// produced by a Brent–Kung prefix tree in P-rounds, G-rounds, C-rounds
// and inverse P-rounds, each of logarithmic depth; the sum is written;
// and the carries are erased by running the carry computation of
// a + NOT(s) backwards, which regenerates the same carry bits (the
// subtraction identity the DKRS paper exploits).
func CLA(n int) (*revcirc.Circuit, Layout) {
	if n <= 0 {
		panic(fmt.Sprintf("adder: non-positive width %d", n))
	}
	if n == 1 {
		// Degenerate width: sum = a XOR b, carry = a AND b.
		lay := Layout{N: 1, Cin: -1, A: []int{0}, B: []int{1}, Cout: 2, Width: 3}
		c := revcirc.New(3)
		c.Toffoli(0, 1, 2)
		c.CNOT(0, 1)
		return c, lay
	}

	b := newCLABuilder(n)
	b.emit()
	return b.c, b.lay
}

// claBuilder holds the wire plan and gate emission state for CLA.
type claBuilder struct {
	n   int
	c   *revcirc.Circuit
	lay Layout
	// carry[k] is the wire holding c_k (carry into bit k) for k=1..n;
	// carry[n] is the Cout wire and is never erased.
	carry []int
	// pp[t] maps block-end index k (a multiple of 2^t) to the ancilla
	// wire holding the block-propagate P_t[k]; pp[0] is the b register.
	pp []map[int]int
}

func newCLABuilder(n int) *claBuilder {
	lay := Layout{N: n, Cin: -1, A: make([]int, n), B: make([]int, n)}
	for i := 0; i < n; i++ {
		lay.A[i] = i
		lay.B[i] = n + i
	}
	next := 2 * n
	alloc := func() int { w := next; next++; return w }

	carry := make([]int, n+1) // index 0 unused (c_0 = 0)
	for k := 1; k < n; k++ {
		carry[k] = alloc()
		lay.Anc = append(lay.Anc, carry[k])
	}
	lay.Cout = alloc()
	carry[n] = lay.Cout

	// Propagate-tree ancilla: one wire per internal Brent–Kung node.
	pp := []map[int]int{nil} // pp[0] is the b register, resolved lazily
	for t := 1; 1<<uint(t) <= n; t++ {
		level := make(map[int]int)
		for k := 1 << uint(t); k <= n; k += 1 << uint(t) {
			level[k] = alloc()
			lay.Anc = append(lay.Anc, level[k])
		}
		pp = append(pp, level)
	}
	lay.Width = next
	return &claBuilder{n: n, c: revcirc.New(next), lay: lay, carry: carry, pp: pp}
}

// ppWire resolves the wire holding P_t[k]. Level 0 propagate bits live
// in the b register (block of size 1 ending at k is bit k-1).
func (b *claBuilder) ppWire(t, k int) int {
	if t == 0 {
		return b.lay.B[k-1]
	}
	w, ok := b.pp[t][k]
	if !ok {
		panic(fmt.Sprintf("adder: no P[%d][%d] node", t, k))
	}
	return w
}

// tree emits the Brent–Kung carry tree over the low m bits: given
// carry[k] = g_{k-1} for k = 1..m and propagate bits in b, it rewrites
// carry[k] = c_k for k = 1..m, restoring every propagate-tree ancilla.
// The rounds follow DKRS: P-rounds, G-rounds, C-rounds, inverse
// P-rounds, each of O(log m) Toffoli depth.
func (b *claBuilder) tree(m int) {
	maxT := 0
	for 1<<uint(maxT+1) <= m {
		maxT++
	}
	// P-rounds: P_t[k] = P_{t-1}[k-2^(t-1)] AND P_{t-1}[k].
	for t := 1; t <= maxT; t++ {
		for k := 1 << uint(t); k <= m; k += 1 << uint(t) {
			half := 1 << uint(t-1)
			b.c.Toffoli(b.ppWire(t-1, k-half), b.ppWire(t-1, k), b.ppWire(t, k))
		}
	}
	// G-rounds (up-sweep): G[k] ^= P_{t-1}[k] AND G[k-2^(t-1)].
	for t := 1; t <= maxT; t++ {
		for k := 1 << uint(t); k <= m; k += 1 << uint(t) {
			half := 1 << uint(t-1)
			b.c.Toffoli(b.carry[k-half], b.ppWire(t-1, k), b.carry[k])
		}
	}
	// C-rounds (down-sweep): spread prefixes to the block midpoints:
	// G[k] ^= P_{t-1}[k] AND G[k-2^(t-1)] for k = j*2^t + 2^(t-1).
	for t := maxT; t >= 1; t-- {
		step := 1 << uint(t)
		for k := step + step/2; k <= m; k += step {
			b.c.Toffoli(b.carry[k-step/2], b.ppWire(t-1, k), b.carry[k])
		}
	}
	// Inverse P-rounds restore the propagate-tree ancilla.
	for t := maxT; t >= 1; t-- {
		for k := 1 << uint(t); k <= m; k += 1 << uint(t) {
			half := 1 << uint(t-1)
			b.c.Toffoli(b.ppWire(t-1, k-half), b.ppWire(t-1, k), b.ppWire(t, k))
		}
	}
}

// treeInverse emits the exact inverse of tree(m). Every gate is
// self-inverse, so it replays the same gates in reverse order.
func (b *claBuilder) treeInverse(m int) {
	probe := newCLABuilder(b.n)
	probe.tree(m)
	gates := probe.c.Gates()
	for i := len(gates) - 1; i >= 0; i-- {
		g := gates[i]
		b.c.Toffoli(g.A, g.B, g.T)
	}
}

func (b *claBuilder) emit() {
	n, c, lay := b.n, b.c, b.lay

	// Phase 1 — generate and propagate: carry[i+1] = a_i AND b_i,
	// b_i = a_i XOR b_i.
	for i := 0; i < n; i++ {
		c.Toffoli(lay.A[i], lay.B[i], b.carry[i+1])
	}
	for i := 0; i < n; i++ {
		c.CNOT(lay.A[i], lay.B[i])
	}

	// Phase 2 — carry tree over all n bits: carry[k] becomes c_k.
	b.tree(n)

	// Phase 3 — sum: s_i = p_i XOR c_i (c_0 = 0, so bit 0 is done).
	for i := 1; i < n; i++ {
		c.CNOT(b.carry[i], lay.B[i])
	}

	// Phase 4 — erase carries c_1..c_{n-1} (Cout keeps c_n). The carry
	// computation of a + NOT(s) reproduces the same carry bits, so we
	// run that computation's inverse. Only bits 0..n-2 participate.
	m := n - 1
	if m == 0 {
		return
	}
	for i := 0; i < m; i++ {
		c.X(lay.B[i])
		c.CNOT(lay.A[i], lay.B[i]) // b_i = a_i XOR NOT s_i = p'_i
	}
	b.treeInverse(m)
	for i := 0; i < m; i++ {
		c.CNOT(lay.A[i], lay.B[i]) // b_i = NOT s_i
	}
	for i := 0; i < m; i++ {
		c.Toffoli(lay.A[i], lay.B[i], b.carry[i+1]) // erase g'_i
	}
	for i := 0; i < m; i++ {
		c.X(lay.B[i]) // b_i = s_i
	}
}

// PackBits builds the circuit input as a bit slice, for circuits wider
// than the 64-wire packed executor.
func (l Layout) PackBits(a, b uint64, cin bool) []bool {
	if l.N < 64 && (a >= 1<<uint(l.N) || b >= 1<<uint(l.N)) {
		panic(fmt.Sprintf("adder: operand exceeds %d bits", l.N))
	}
	bits := make([]bool, l.Width)
	for i := 0; i < l.N; i++ {
		bits[l.A[i]] = a>>uint(i)&1 == 1
		bits[l.B[i]] = b>>uint(i)&1 == 1
	}
	if cin {
		if l.Cin < 0 {
			panic("adder: adder has no carry-in wire")
		}
		bits[l.Cin] = true
	}
	return bits
}

// UnpackBits is the bit-slice analogue of Unpack.
func (l Layout) UnpackBits(bits []bool) (aOut, sum uint64, carry, ancClean bool) {
	for i := 0; i < l.N; i++ {
		if bits[l.A[i]] {
			aOut |= 1 << uint(i)
		}
		if bits[l.B[i]] {
			sum |= 1 << uint(i)
		}
	}
	carry = bits[l.Cout]
	ancClean = true
	for _, w := range l.Anc {
		if bits[w] {
			ancClean = false
		}
	}
	return aOut, sum, carry, ancClean
}

// AddWide runs the adder through the bit-slice executor, supporting
// circuits of any width. Semantics match Add.
func AddWide(c *revcirc.Circuit, lay Layout, a, b uint64, cin bool) (sum uint64, carry bool) {
	out := c.Run(lay.PackBits(a, b, cin))
	aOut, sum, carry, clean := lay.UnpackBits(out)
	if aOut != a || !clean {
		panic(fmt.Sprintf("adder: corrupted state a=%d aOut=%d clean=%v", a, aOut, clean))
	}
	if lay.Cin >= 0 && out[lay.Cin] != cin {
		panic(fmt.Sprintf("adder: carry-in not restored: in=%v out=%v", cin, out[lay.Cin]))
	}
	return sum, carry
}

// Add is a convenience executor: it runs the circuit on (a, b, cin) and
// returns the sum register and carry-out. It panics if the adder failed
// to restore a, cin or an ancilla wire — by construction that cannot
// happen for the adders in this package, and the tests rely on it.
func Add(c *revcirc.Circuit, lay Layout, a, b uint64, cin bool) (sum uint64, carry bool) {
	out := c.RunUint(lay.Pack(a, b, cin))
	aOut, sum, carry, clean := lay.Unpack(out)
	if aOut != a || !clean {
		panic(fmt.Sprintf("adder: corrupted state a=%d aOut=%d clean=%v", a, aOut, clean))
	}
	if lay.Cin >= 0 {
		if restored := out>>uint(lay.Cin)&1 == 1; restored != cin {
			panic(fmt.Sprintf("adder: carry-in not restored: in=%v out=%v", cin, restored))
		}
	}
	return sum, carry
}
