package adder

import (
	"math/rand/v2"
	"testing"

	"qla/internal/revcirc"
)

type buildFunc func(n int) (*revcirc.Circuit, Layout)

var builders = []struct {
	name   string
	build  buildFunc
	hasCin bool
}{
	{"Ripple", Ripple, true},
	{"CLA", CLA, false},
}

// TestExhaustiveSmallWidths checks every (a, b, cin) combination for
// widths 1..6 against integer addition, including carry-out, operand
// preservation and ancilla restoration (Add panics otherwise).
func TestExhaustiveSmallWidths(t *testing.T) {
	for _, bt := range builders {
		t.Run(bt.name, func(t *testing.T) {
			for n := 1; n <= 6; n++ {
				c, lay := bt.build(n)
				cins := []bool{false}
				if bt.hasCin {
					cins = []bool{false, true}
				}
				for a := uint64(0); a < 1<<uint(n); a++ {
					for b := uint64(0); b < 1<<uint(n); b++ {
						for _, cin := range cins {
							sum, carry := Add(c, lay, a, b, cin)
							want := a + b
							if cin {
								want++
							}
							wantSum := want & (1<<uint(n) - 1)
							wantCarry := want>>uint(n) == 1
							if sum != wantSum || carry != wantCarry {
								t.Fatalf("n=%d a=%d b=%d cin=%v: got (%d,%v), want (%d,%v)",
									n, a, b, cin, sum, carry, wantSum, wantCarry)
							}
						}
					}
				}
			}
		})
	}
}

// TestRandomLargeWidths spot-checks wide adders against uint64 addition,
// using the bit-slice executor for circuits beyond 64 wires.
func TestRandomLargeWidths(t *testing.T) {
	r := rand.New(rand.NewPCG(41, 43))
	for _, bt := range builders {
		t.Run(bt.name, func(t *testing.T) {
			for _, n := range []int{8, 13, 16, 20, 31, 48} {
				c, lay := bt.build(n)
				mask := uint64(1)<<uint(n) - 1
				for trial := 0; trial < 200; trial++ {
					a := r.Uint64() & mask
					b := r.Uint64() & mask
					cin := bt.hasCin && r.IntN(2) == 1
					var sum uint64
					var carry bool
					if lay.Width <= 64 {
						sum, carry = Add(c, lay, a, b, cin)
					} else {
						sum, carry = AddWide(c, lay, a, b, cin)
					}
					want := a + b
					if cin {
						want++
					}
					if sum != want&mask || carry != (want>>uint(n) == 1) {
						t.Fatalf("n=%d a=%d b=%d cin=%v: got (%d,%v)", n, a, b, cin, sum, carry)
					}
				}
			}
		})
	}
}

// TestAddWideMatchesAdd cross-checks the two executors on a width both
// support.
func TestAddWideMatchesAdd(t *testing.T) {
	r := rand.New(rand.NewPCG(5, 6))
	c, lay := CLA(12)
	for trial := 0; trial < 100; trial++ {
		a := r.Uint64() & 0xfff
		b := r.Uint64() & 0xfff
		s1, c1 := Add(c, lay, a, b, false)
		s2, c2 := AddWide(c, lay, a, b, false)
		if s1 != s2 || c1 != c2 {
			t.Fatalf("executors disagree: (%d,%v) vs (%d,%v)", s1, c1, s2, c2)
		}
	}
}

// TestCarryOutXORSemantics verifies the carry-out wire is XORed, not
// overwritten: running the adder with the Cout wire preset to 1 must
// produce the complement of the carry.
func TestCarryOutXORSemantics(t *testing.T) {
	for _, bt := range builders {
		t.Run(bt.name, func(t *testing.T) {
			c, lay := bt.build(4)
			in := lay.Pack(9, 8, false) | 1<<uint(lay.Cout) // 9+8 = 17 carries
			out := c.RunUint(in)
			_, sum, carry, _ := lay.Unpack(out)
			if sum != 1 || carry {
				t.Fatalf("got sum=%d carry=%v, want sum=1 carry=false (XOR of preset 1)", sum, carry)
			}
		})
	}
}

// TestRippleToffoliDepthLinear: the Cuccaro adder's Toffoli critical
// path is exactly 2n (n MAJ + n UMA Toffolis on one serial carry chain).
func TestRippleToffoliDepthLinear(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 16, 24} {
		c, _ := Ripple(n)
		if d := c.ToffoliDepth(); d != 2*n {
			t.Fatalf("n=%d: Ripple ToffoliDepth = %d, want %d", n, d, 2*n)
		}
	}
}

// TestCLAToffoliDepthLogarithmic: the DKRS adder's Toffoli depth grows
// logarithmically. The paper's latency model charges 4*log2(n) Toffoli
// steps per QCLA; our phase-sequential construction runs the carry tree
// twice (compute + erase), so we assert the measured depth is Θ(log n)
// with a small constant: at most 9*ceil(log2 n) + 6, and we record the
// exact values for widths of interest so regressions are visible.
func TestCLAToffoliDepthLogarithmic(t *testing.T) {
	log2ceil := func(n int) int {
		k := 0
		for 1<<uint(k) < n {
			k++
		}
		return k
	}
	for _, n := range []int{2, 4, 8, 16, 20} {
		c, _ := CLA(n)
		d := c.ToffoliDepth()
		bound := 9*log2ceil(n) + 6
		if d > bound {
			t.Fatalf("n=%d: CLA ToffoliDepth = %d exceeds bound %d", n, d, bound)
		}
	}
	// Doubling the width must add only a constant number of layers.
	c16, _ := CLA(16)
	c8, _ := CLA(8)
	if growth := c16.ToffoliDepth() - c8.ToffoliDepth(); growth > 12 {
		t.Fatalf("CLA depth grew by %d from n=8 to n=16; want logarithmic growth", growth)
	}
}

// TestCLABeatsRipple pins the crossover the paper's Table 2 relies on:
// for the operand widths Shor's algorithm uses (>= 128 bits the paper;
// >= 8 here), the lookahead adder's Toffoli critical path is strictly
// shorter than the ripple baseline's.
func TestCLABeatsRipple(t *testing.T) {
	for _, n := range []int{8, 16, 20} {
		cla, _ := CLA(n)
		rip, _ := Ripple(n)
		if cla.ToffoliDepth() >= rip.ToffoliDepth() {
			t.Fatalf("n=%d: CLA depth %d >= Ripple depth %d", n, cla.ToffoliDepth(), rip.ToffoliDepth())
		}
	}
}

// TestRippleCounts: the Cuccaro adder uses exactly 2n Toffolis and
// 4n+1 CNOTs.
func TestRippleCounts(t *testing.T) {
	for _, n := range []int{1, 3, 8} {
		c, _ := Ripple(n)
		k := c.Counts()
		if k.Toffoli != 2*n {
			t.Fatalf("n=%d: Toffoli count = %d, want %d", n, k.Toffoli, 2*n)
		}
		if k.CNot != 4*n+1 {
			t.Fatalf("n=%d: CNOT count = %d, want %d", n, k.CNot, 4*n+1)
		}
		if k.Not != 0 {
			t.Fatalf("n=%d: NOT count = %d, want 0", n, k.Not)
		}
	}
}

// TestCLACountsLinear: the lookahead adder trades depth for size; its
// Toffoli count stays linear in n (DKRS report < 10n).
func TestCLACountsLinear(t *testing.T) {
	for _, n := range []int{4, 8, 16} {
		c, _ := CLA(n)
		k := c.Counts()
		if k.Toffoli > 10*n {
			t.Fatalf("n=%d: Toffoli count %d exceeds 10n", n, k.Toffoli)
		}
	}
}

// TestLayoutWidths documents the qubit overhead of each adder: ripple
// uses 2n+2 wires, the lookahead roughly 4n.
func TestLayoutWidths(t *testing.T) {
	for _, n := range []int{4, 8, 16} {
		_, lr := Ripple(n)
		if lr.Width != 2*n+2 {
			t.Fatalf("n=%d: ripple width = %d, want %d", n, lr.Width, 2*n+2)
		}
		_, lc := CLA(n)
		if lc.Width > 4*n+2 {
			t.Fatalf("n=%d: CLA width = %d exceeds 4n+2", n, lc.Width)
		}
		if lc.Cin != -1 {
			t.Fatalf("CLA should have no carry-in, got wire %d", lc.Cin)
		}
	}
}

// TestPackUnpackRoundTrip covers the layout helpers directly.
func TestPackUnpackRoundTrip(t *testing.T) {
	_, lay := CLA(6)
	x := lay.Pack(33, 17, false)
	a, b, carry, clean := lay.Unpack(x)
	if a != 33 || b != 17 || carry || !clean {
		t.Fatalf("round trip: a=%d b=%d carry=%v clean=%v", a, b, carry, clean)
	}
}

func TestPackRejectsOversizedOperand(t *testing.T) {
	_, lay := Ripple(3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for oversized operand")
		}
	}()
	lay.Pack(8, 0, false)
}

func TestPackRejectsCinWhenAbsent(t *testing.T) {
	_, lay := CLA(3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for cin on CLA")
		}
	}()
	lay.Pack(1, 1, true)
}

func TestBuildersRejectNonPositiveWidth(t *testing.T) {
	for _, bt := range builders {
		t.Run(bt.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			bt.build(0)
		})
	}
}

func BenchmarkBuildRipple64(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Ripple(31)
	}
}

func BenchmarkBuildCLA64(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		CLA(16)
	}
}

func BenchmarkAdd16(b *testing.B) {
	for _, bt := range builders {
		b.Run(bt.name, func(b *testing.B) {
			c, lay := bt.build(16)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Add(c, lay, uint64(i)&0xffff, uint64(i*7)&0xffff, false)
			}
		})
	}
}
