package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"log/slog"
)

// TraceHeader is the HTTP header carrying a request's trace ID. It is
// minted at ingress when absent, echoed on every response (including
// error envelopes), and propagated on fleet forwards, lease claims,
// and peer cache fetches so one sweep's life can be followed across
// replicas.
const TraceHeader = "X-QLA-Trace"

// maxTraceLen bounds accepted client-supplied trace IDs.
const maxTraceLen = 64

type traceKey struct{}

// NewTraceID returns a fresh 16-byte random trace ID in hex.
func NewTraceID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; a fixed
		// fallback keeps tracing non-fatal regardless.
		return "0000deadbeef0000"
	}
	return hex.EncodeToString(b[:])
}

// SanitizeTraceID validates a client-supplied trace ID: printable
// ASCII subset safe for headers and log lines, at most 64 bytes.
// Returns "" when the ID is unusable.
func SanitizeTraceID(id string) string {
	if id == "" || len(id) > maxTraceLen {
		return ""
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		ok := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
			c == '-' || c == '_' || c == '.' || c == ':'
		if !ok {
			return ""
		}
	}
	return id
}

// WithTrace returns ctx carrying the trace ID. Like sched.Identity,
// the value survives context.WithoutCancel, so detached singleflight
// computes keep their originating trace.
func WithTrace(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, id)
}

// TraceFrom returns the trace ID carried by ctx, or "".
func TraceFrom(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(traceKey{}).(string)
	return id
}

// L returns base (slog.Default if nil) with the ctx's trace ID
// attached as a "trace" attribute, when present.
func L(ctx context.Context, base *slog.Logger) *slog.Logger {
	if base == nil {
		base = slog.Default()
	}
	if id := TraceFrom(ctx); id != "" {
		return base.With("trace", id)
	}
	return base
}
