package obs

import (
	"context"
	"fmt"
	"log/slog"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("qla_test_total", "test counter")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if same := r.Counter("qla_test_total", "test counter"); same != c {
		t.Fatalf("re-registering returned a different counter")
	}

	g := r.Gauge("qla_test_gauge", "test gauge")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
}

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var cv *CounterVec
	var hv *HistogramVec
	var r *Registry
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	cv.With("x").Inc()
	hv.With("x").Observe(1)
	if r.Counter("x", "") != nil || r.Gauge("x", "") != nil || r.Histogram("x", "", nil) != nil {
		t.Fatalf("nil registry must return nil instruments")
	}
	if err := r.WriteText(&strings.Builder{}); err != nil {
		t.Fatalf("nil registry WriteText: %v", err)
	}
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatalf("nil instruments must read zero")
	}
}

// TestHistogramBucketBoundaries pins the le semantics: an observation
// exactly at a bound counts into that bound's bucket; just above goes
// to the next.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("qla_test_seconds", "test", []float64{1, 2, 4})

	h.Observe(0.5)  // below first bound -> bucket le=1
	h.Observe(1.0)  // exactly at bound  -> bucket le=1
	h.Observe(1.01) // just above        -> bucket le=2
	h.Observe(2.0)  // at second bound   -> bucket le=2
	h.Observe(4.0)  // at last bound     -> bucket le=4
	h.Observe(4.5)  // above all bounds  -> +Inf only

	cum := h.BucketCounts()
	want := []uint64{2, 4, 5, 6} // cumulative: le=1, le=2, le=4, +Inf
	if len(cum) != len(want) {
		t.Fatalf("bucket count len = %d, want %d", len(cum), len(want))
	}
	for i := range want {
		if cum[i] != want[i] {
			t.Errorf("cumulative bucket[%d] = %d, want %d", i, cum[i], want[i])
		}
	}
	if h.Count() != 6 {
		t.Errorf("count = %d, want 6", h.Count())
	}
	if got, want := h.Sum(), 0.5+1.0+1.01+2.0+4.0+4.5; math.Abs(got-want) > 1e-9 {
		t.Errorf("sum = %v, want %v", got, want)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("qla_test_seconds", "test", ExpBuckets(1e-3, 2, 10))
	c := r.Counter("qla_test_total", "test")
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(i%100) / 100)
				c.Inc()
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("count = %d, want %d", h.Count(), workers*per)
	}
	if c.Value() != workers*per {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*per)
	}
	cum := h.BucketCounts()
	if got := cum[len(cum)-1]; got != workers*per {
		t.Fatalf("+Inf cumulative = %d, want %d", got, workers*per)
	}
}

func TestVecCardinalityBound(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("qla_test_total", "test", "tenant")
	for i := 0; i < maxSeries+50; i++ {
		v.With(fmt.Sprintf("tenant-%d", i)).Inc()
	}
	over := v.With("one-more")
	if over != v.With("and-another") {
		t.Fatalf("past the cap, new label combos must share the overflow child")
	}
	over.Inc()
	v.f.mu.Lock()
	n := len(v.f.children)
	oc, ok := v.f.children[Overflow]
	v.f.mu.Unlock()
	if n != maxSeries+1 {
		t.Fatalf("children = %d, want %d (cap + overflow)", n, maxSeries+1)
	}
	if !ok || oc.c.Value() != 51 {
		t.Fatalf("overflow child count = %d (present=%v), want 51", oc.c.Value(), ok)
	}
	// Existing children keep resolving after the cap.
	if v.With("tenant-3").Value() != 1 {
		t.Fatalf("pre-cap child lost after overflow")
	}
}

func TestWriteTextExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("qla_a_total", "a counter").Add(7)
	r.CounterVec("qla_b_total", "b counter", "route", "status").With(`ro"te`, "200").Inc()
	r.Gauge("qla_c", "a gauge").Set(1.25)
	h := r.Histogram("qla_d_seconds", "a histogram", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	r.CounterFunc("qla_e_total", "bridged", map[string]string{"tier": "memory"}, func() float64 { return 3 })
	r.CounterFunc("qla_e_total", "bridged", map[string]string{"tier": "disk"}, func() float64 { return 2 })

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP qla_a_total a counter\n# TYPE qla_a_total counter\nqla_a_total 7\n",
		`qla_b_total{route="ro\"te",status="200"} 1`,
		"# TYPE qla_c gauge\nqla_c 1.25\n",
		`qla_d_seconds_bucket{le="0.1"} 1`,
		`qla_d_seconds_bucket{le="1"} 2`,
		`qla_d_seconds_bucket{le="+Inf"} 3`,
		"qla_d_seconds_sum 5.55",
		"qla_d_seconds_count 3",
		`qla_e_total{tier="memory"} 3`,
		`qla_e_total{tier="disk"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n---\n%s", want, out)
		}
	}
	if n := strings.Count(out, "# TYPE qla_e_total counter"); n != 1 {
		t.Errorf("family header for qla_e_total written %d times, want 1", n)
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1e-5, 2, 4)
	want := []float64{1e-5, 2e-5, 4e-5, 8e-5}
	for i := range want {
		if math.Abs(b[i]-want[i]) > 1e-12 {
			t.Fatalf("bucket[%d] = %v, want %v", i, b[i], want[i])
		}
	}
}

func TestTraceContext(t *testing.T) {
	id := NewTraceID()
	if len(id) != 32 || SanitizeTraceID(id) != id {
		t.Fatalf("NewTraceID returned %q", id)
	}
	if other := NewTraceID(); other == id {
		t.Fatalf("two trace IDs collided: %q", id)
	}
	ctx := WithTrace(context.Background(), id)
	if got := TraceFrom(ctx); got != id {
		t.Fatalf("TraceFrom = %q, want %q", got, id)
	}
	// Values survive WithoutCancel — the detached-compute contract.
	if got := TraceFrom(context.WithoutCancel(ctx)); got != id {
		t.Fatalf("trace lost through WithoutCancel: %q", got)
	}
	if TraceFrom(context.Background()) != "" || TraceFrom(nil) != "" {
		t.Fatalf("empty contexts must yield empty trace")
	}
	for _, bad := range []string{"", strings.Repeat("x", 65), "sp ace", "new\nline", `quo"te`} {
		if SanitizeTraceID(bad) != "" {
			t.Errorf("SanitizeTraceID(%q) accepted", bad)
		}
	}
	if SanitizeTraceID("abc-DEF_1.2:3") != "abc-DEF_1.2:3" {
		t.Errorf("SanitizeTraceID rejected a valid ID")
	}
}

func TestTraceLogger(t *testing.T) {
	var b strings.Builder
	base := slog.New(slog.NewTextHandler(&b, nil))
	ctx := WithTrace(context.Background(), "abc123")
	L(ctx, base).Info("hello")
	if !strings.Contains(b.String(), "trace=abc123") {
		t.Fatalf("log line missing trace attr: %s", b.String())
	}
	b.Reset()
	L(context.Background(), base).Info("no trace")
	if strings.Contains(b.String(), "trace=") {
		t.Fatalf("untraced log line grew a trace attr: %s", b.String())
	}
}
