// Package obs is a dependency-free instrumentation layer: typed
// Counter/Gauge/Histogram instruments with atomic hot paths, bounded
// label support, and a Registry that renders Prometheus text
// exposition format.
//
// Design notes:
//
//   - Instrument methods are nil-safe: a nil *Counter, *Gauge, or
//     *Histogram is a no-op, so library packages can carry optional
//     instruments without branching at every call site.
//   - Label cardinality is bounded per vec (maxSeries, mirroring the
//     512-tenant cap in internal/sched); once the cap is reached new
//     label combinations collapse into a single "~overflow" child so a
//     hostile or misbehaving client cannot grow the registry without
//     bound.
//   - CounterFunc/GaugeFunc register pull-based series evaluated at
//     scrape time, bridging pre-existing subsystem counters into the
//     registry without double bookkeeping: the subsystem's own atomic
//     stays the single source of truth for both /metrics and /v1/stats.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// maxSeries bounds the number of distinct label combinations a single
// vec will track, mirroring sched.tenantStatsCap.
const maxSeries = 512

// Overflow is the label value substituted for every label once a vec
// exceeds maxSeries distinct children.
const Overflow = "~overflow"

// Counter is a monotonically increasing counter. The zero value is
// ready to use; a nil *Counter is a no-op.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 value that can go up and down. The zero value is
// ready to use; a nil *Gauge is a no-op.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add increments the gauge by d (d may be negative).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into a fixed set of cumulative
// buckets. Bounds are upper-inclusive (an observation v lands in the
// first bucket with v <= bound, matching Prometheus "le" semantics).
// A nil *Histogram is a no-op.
type Histogram struct {
	bounds  []float64 // sorted upper bounds, +Inf implicit
	counts  []atomic.Uint64
	sumBits atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	bs := make([]float64, len(bounds))
	copy(bs, bounds)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]atomic.Uint64, len(bs)+1)}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations (summed across
// buckets at read time; the hot path only touches one bucket atomic
// plus the sum).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// BucketCounts returns the cumulative count at each bound (len ==
// len(bounds)+1, last entry is the +Inf bucket == Count modulo racing
// observers).
func (h *Histogram) BucketCounts() []uint64 {
	if h == nil {
		return nil
	}
	out := make([]uint64, len(h.counts))
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		out[i] = cum
	}
	return out
}

// ExpBuckets returns n exponentially spaced upper bounds starting at
// start and multiplying by factor.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// LatencyBuckets is the default layout for second-denominated latency
// histograms: 10µs to ~84s in 24 doubling steps.
var LatencyBuckets = ExpBuckets(1e-5, 2, 24)

// family is one exposition family: a name, help text, type, and a set
// of children (concrete instruments and/or pull-based funcs).
type family struct {
	name   string
	help   string
	typ    string // "counter", "gauge", "histogram"
	labels []string

	mu       sync.Mutex
	children map[string]*child // key: joined label values
	order    []string
	funcs    []funcSeries
}

type child struct {
	values []string
	c      *Counter
	g      *Gauge
	h      *Histogram
}

type funcSeries struct {
	labels map[string]string
	fn     func() float64
}

// Registry holds instrument families and renders them in Prometheus
// text exposition format.
type Registry struct {
	mu    sync.Mutex
	fams  map[string]*family
	order []string
}

// NewRegistry returns an empty Registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

func (r *Registry) familyFor(name, help, typ string, labels []string) *family {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		if f.typ != typ {
			panic(fmt.Sprintf("obs: %s re-registered as %s, was %s", name, typ, f.typ))
		}
		return f
	}
	f := &family{name: name, help: help, typ: typ, labels: labels, children: make(map[string]*child)}
	r.fams[name] = f
	r.order = append(r.order, name)
	return f
}

// Counter registers (or returns the existing) scalar counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.familyFor(name, help, "counter", nil)
	if f == nil {
		return nil
	}
	return f.child(nil).c
}

// Gauge registers (or returns the existing) scalar gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.familyFor(name, help, "gauge", nil)
	if f == nil {
		return nil
	}
	return f.child(nil).g
}

// Histogram registers (or returns the existing) scalar histogram with
// the given upper bounds (LatencyBuckets if nil).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	f := r.familyFor(name, help, "histogram", nil)
	if f == nil {
		return nil
	}
	return f.childH(nil, bounds).h
}

// CounterFunc registers a pull-based counter series with fixed labels,
// evaluated at scrape time. Multiple funcs may share one family name
// with different label sets.
func (r *Registry) CounterFunc(name, help string, labels map[string]string, fn func() float64) {
	f := r.familyFor(name, help, "counter", nil)
	if f == nil {
		return
	}
	f.mu.Lock()
	f.funcs = append(f.funcs, funcSeries{labels: labels, fn: fn})
	f.mu.Unlock()
}

// GaugeFunc registers a pull-based gauge series with fixed labels.
func (r *Registry) GaugeFunc(name, help string, labels map[string]string, fn func() float64) {
	f := r.familyFor(name, help, "gauge", nil)
	if f == nil {
		return
	}
	f.mu.Lock()
	f.funcs = append(f.funcs, funcSeries{labels: labels, fn: fn})
	f.mu.Unlock()
}

// CounterVec is a family of counters partitioned by label values.
type CounterVec struct {
	f *family
}

// CounterVec registers (or returns the existing) labeled counter
// family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	f := r.familyFor(name, help, "counter", labels)
	if f == nil {
		return nil
	}
	return &CounterVec{f: f}
}

// With returns the counter for the given label values (one per label
// name, in registration order). Past the cardinality cap all new
// combinations share the overflow child. Nil-safe.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	return v.f.child(values).c
}

// HistogramVec is a family of histograms partitioned by label values.
type HistogramVec struct {
	f      *family
	bounds []float64
}

// HistogramVec registers (or returns the existing) labeled histogram
// family with the given bounds (LatencyBuckets if nil).
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	f := r.familyFor(name, help, "histogram", labels)
	if f == nil {
		return nil
	}
	if bounds == nil {
		bounds = LatencyBuckets
	}
	return &HistogramVec{f: f, bounds: bounds}
}

// With returns the histogram for the given label values. Nil-safe.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	return v.f.childH(values, v.bounds).h
}

func (f *family) child(values []string) *child {
	return f.childH(values, nil)
}

func (f *family) childH(values []string, bounds []float64) *child {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: %s expects %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	if len(f.children) >= maxSeries {
		values = make([]string, len(f.labels))
		for i := range values {
			values[i] = Overflow
		}
		key = strings.Join(values, "\x00")
		if c, ok := f.children[key]; ok {
			return c
		}
	}
	c := &child{values: append([]string(nil), values...)}
	switch f.typ {
	case "counter":
		c.c = &Counter{}
	case "gauge":
		c.g = &Gauge{}
	case "histogram":
		if bounds == nil {
			bounds = LatencyBuckets
		}
		c.h = newHistogram(bounds)
	}
	f.children[key] = c
	f.order = append(f.order, key)
	return c
}

// WriteText renders every family in Prometheus text exposition format
// (version 0.0.4). Families appear in registration order; series
// within a family are sorted by label values for determinism.
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.fams[n]
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		f.write(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func (f *family) write(b *strings.Builder) {
	f.mu.Lock()
	keys := append([]string(nil), f.order...)
	sort.Strings(keys)
	children := make([]*child, 0, len(keys))
	for _, k := range keys {
		children = append(children, f.children[k])
	}
	funcs := append([]funcSeries(nil), f.funcs...)
	f.mu.Unlock()

	if len(children) == 0 && len(funcs) == 0 {
		return
	}
	fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.typ)
	for _, c := range children {
		lbl := labelString(f.labels, c.values, "")
		switch f.typ {
		case "counter":
			fmt.Fprintf(b, "%s%s %d\n", f.name, lbl, c.c.Value())
		case "gauge":
			fmt.Fprintf(b, "%s%s %s\n", f.name, lbl, formatFloat(c.g.Value()))
		case "histogram":
			cum := c.h.BucketCounts()
			for i, bound := range c.h.bounds {
				fmt.Fprintf(b, "%s_bucket%s %d\n", f.name, labelString(f.labels, c.values, formatFloat(bound)), cum[i])
			}
			fmt.Fprintf(b, "%s_bucket%s %d\n", f.name, labelString(f.labels, c.values, "+Inf"), cum[len(cum)-1])
			fmt.Fprintf(b, "%s_sum%s %s\n", f.name, lbl, formatFloat(c.h.Sum()))
			fmt.Fprintf(b, "%s_count%s %d\n", f.name, lbl, c.h.Count())
		}
	}
	for _, fs := range funcs {
		names := make([]string, 0, len(fs.labels))
		for k := range fs.labels {
			names = append(names, k)
		}
		sort.Strings(names)
		values := make([]string, len(names))
		for i, k := range names {
			values[i] = fs.labels[k]
		}
		v := fs.fn()
		if f.typ == "counter" {
			fmt.Fprintf(b, "%s%s %d\n", f.name, labelString(names, values, ""), uint64(v))
		} else {
			fmt.Fprintf(b, "%s%s %s\n", f.name, labelString(names, values, ""), formatFloat(v))
		}
	}
}

// labelString renders {k="v",...}, appending le when non-empty.
func labelString(names, values []string, le string) string {
	if len(names) == 0 && le == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if le != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(`le="`)
		b.WriteString(le)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
