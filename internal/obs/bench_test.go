package obs

import "testing"

// Target: <20ns/op uncontended for both (CI bench smoke).

func BenchmarkObsCounter(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("qla_bench_total", "bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("qla_bench_seconds", "bench", LatencyBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.00042)
	}
}

func BenchmarkCounterVecWith(b *testing.B) {
	r := NewRegistry()
	v := r.CounterVec("qla_bench_vec_total", "bench", "route", "status")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v.With("POST /v1/run", "200").Inc()
	}
}
