// Package journal is the write-ahead job journal of the QLA serving
// layer: the durability tier that lets a restarted qlaserve re-admit
// sweeps a dead process orphaned. One job is one append-only file of
// JSON lines under the journal directory, named by the job's content
// address: the first line records the admitted canonical spec (written
// atomically — temp file, fsync, rename — so a half-admitted job can
// never replay), subsequent lines record per-point completions
// (point hash → status) and fleet leases (point hash → holder), and a
// terminal line marks the job settled.
// Replay scans the directory at startup: files with a terminal record
// are deleted (the job finished; nothing to recover — and a journaled
// failure must never be resurrected as a stale failed job, re-running
// is always fresher), files without one are handed back as Pending
// work to re-admit. Point completions are deliberately thin — the
// content-addressed result cache already holds the bytes, so replaying
// a half-finished sweep re-runs only the points the cache cannot
// serve.
//
// Point appends are single unsynced writes: a crash may lose the tail
// of the log (replay tolerates a torn final line), costing at most a
// few re-runs that the result cache absorbs. Admission and terminal
// records are fsynced — they decide whether a job replays at all.
package journal

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"qla/internal/obs"
)

// Kind labels what the admitted spec payload decodes as.
const KindSweep = "sweep"

// StatusLeased marks a per-point record as a fleet lease, not a
// completion: this replica claimed the point and is about to compute
// it. Replay treats leased-but-never-completed points as pending — the
// crash-recovery path for a dead lessee.
const StatusLeased = "leased"

// suffix is the journal file extension.
const suffix = ".wal"

// record is one JSON line of a journal file. Exactly one of the three
// shapes is populated: admission (ID/Kind/Tenant/Spec), point
// (Point/Status), terminal (State).
type record struct {
	V      int             `json:"v,omitempty"`
	ID     string          `json:"id,omitempty"`
	Kind   string          `json:"kind,omitempty"`
	Tenant string          `json:"tenant,omitempty"`
	Spec   json.RawMessage `json:"spec,omitempty"`
	Point  string          `json:"point,omitempty"`
	// Status is "ok", "error" or "leased"; Cached and Attempts qualify
	// completions, Holder names the replica behind a lease.
	Status   string `json:"status,omitempty"`
	Cached   bool   `json:"cached,omitempty"`
	Attempts int    `json:"attempts,omitempty"`
	Holder   string `json:"holder,omitempty"`
	State    string `json:"state,omitempty"`
}

// PointStatus is the replayed view of one per-point completion record.
type PointStatus struct {
	Status   string
	Cached   bool
	Attempts int
}

// Pending is one unfinished journal entry found by Replay: an admitted
// job with no terminal record — the process died while it ran.
type Pending struct {
	ID   string
	Kind string
	// Tenant is the owner recorded at admission; replayed jobs keep
	// their tenant across restarts (empty in pre-tenancy journals).
	Tenant string
	// Spec is the admitted canonical spec payload, verbatim.
	Spec []byte
	// Points maps point hash → the last completion recorded for it.
	// Lease records never land here: a leased-but-never-completed point
	// must replay as pending work.
	Points map[string]PointStatus
	// Leased counts lease records whose point never completed — work a
	// dead replica claimed but did not finish.
	Leased int
}

// Journal owns a journal directory. Construct with Open; a Journal is
// safe for concurrent use, and a nil *Journal ignores every call.
type Journal struct {
	dir string

	mu   sync.Mutex
	open map[string]*Entry

	admitted, resumed, points, leases, finished, dropped, errors uint64

	// Set by Instrument; nil histograms are no-ops.
	appendSec *obs.Histogram
	fsyncSec  *obs.Histogram
}

// Open prepares a Journal rooted at dir, creating the directory.
func Open(dir string) (*Journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	return &Journal{dir: dir, open: make(map[string]*Entry)}, nil
}

// Instrument registers the journal's instruments on reg: append and
// fsync latency histograms (observed inside the single write path) and
// the record counters bridged as pull-based series. Safe on a nil
// Journal.
func (j *Journal) Instrument(reg *obs.Registry) {
	if j == nil || reg == nil {
		return
	}
	j.appendSec = reg.Histogram("qla_journal_append_seconds",
		"Latency of one journal record append (write plus fsync when the record is synced).", obs.LatencyBuckets)
	j.fsyncSec = reg.Histogram("qla_journal_fsync_seconds",
		"Latency of the fsync alone, for synced records.", obs.LatencyBuckets)
	bridge := func(p *uint64) func() float64 {
		return func() float64 {
			j.mu.Lock()
			defer j.mu.Unlock()
			return float64(*p)
		}
	}
	kind := func(k string) map[string]string { return map[string]string{"kind": k} }
	recHelp := "Journal records appended, by kind."
	reg.CounterFunc("qla_journal_records_total", recHelp, kind("admit"), bridge(&j.admitted))
	reg.CounterFunc("qla_journal_records_total", recHelp, kind("point"), bridge(&j.points))
	reg.CounterFunc("qla_journal_records_total", recHelp, kind("lease"), bridge(&j.leases))
	reg.CounterFunc("qla_journal_records_total", recHelp, kind("finish"), bridge(&j.finished))
	reg.CounterFunc("qla_journal_resumed_total", "Entries re-opened by a resubmission of a journaled job.", nil, bridge(&j.resumed))
	reg.CounterFunc("qla_journal_dropped_total", "Journal files removed after their job settled.", nil, bridge(&j.dropped))
	reg.CounterFunc("qla_journal_errors_total", "Failed journal writes.", nil, bridge(&j.errors))
}

// safeID reports whether id can name a journal file (hex content
// hashes always can).
func safeID(id string) bool {
	return id != "" && !strings.ContainsAny(id, "/\\") && id != "." && id != ".." && filepath.Base(id) == id
}

func (j *Journal) path(id string) string { return filepath.Join(j.dir, id+suffix) }

// Entry is one open journal file. Methods are safe for concurrent use.
type Entry struct {
	j     *Journal
	id    string
	fresh bool

	mu     sync.Mutex
	f      *os.File
	closed bool
}

// Admit records a job admission: the spec payload is durably on disk
// before Admit returns (temp file + fsync + rename), so a crash at any
// later moment replays the job. If an entry for id is already open —
// the job is running in this process — that entry is returned with
// fresh=false and the file is left untouched; a same-address
// resubmission must never clobber the running job's point log.
func (j *Journal) Admit(id, kind, tenant string, spec []byte) (e *Entry, fresh bool, err error) {
	if j == nil {
		return nil, false, nil
	}
	if !safeID(id) {
		return nil, false, fmt.Errorf("journal: unsafe job ID %q", id)
	}
	j.mu.Lock()
	if e, ok := j.open[id]; ok {
		j.mu.Unlock()
		return e, false, nil
	}
	// Reserve the slot before the file work so a concurrent Admit of
	// the same id joins rather than racing the rename.
	e = &Entry{j: j, id: id, fresh: true}
	j.open[id] = e
	j.mu.Unlock()

	line, err := marshalLine(record{V: 1, ID: id, Kind: kind, Tenant: tenant, Spec: spec})
	if err == nil {
		err = func() error {
			tmp, err := os.CreateTemp(j.dir, id+".tmp-*")
			if err != nil {
				return err
			}
			defer os.Remove(tmp.Name())
			if _, err := tmp.Write(line); err != nil {
				tmp.Close()
				return err
			}
			if err := tmp.Sync(); err != nil {
				tmp.Close()
				return err
			}
			if err := os.Rename(tmp.Name(), j.path(id)); err != nil {
				tmp.Close()
				return err
			}
			// The renamed fd stays valid for appends: same inode.
			e.f = tmp
			return nil
		}()
	}
	j.mu.Lock()
	if err != nil {
		delete(j.open, id)
		j.errors++
	} else {
		j.admitted++
	}
	j.mu.Unlock()
	if err != nil {
		return nil, false, fmt.Errorf("journal: admitting %s: %w", id, err)
	}
	return e, true, nil
}

// Resume reopens an existing entry (typically one Replay returned) for
// further point appends and its eventual terminal record.
func (j *Journal) Resume(id string) (*Entry, error) {
	if j == nil {
		return nil, nil
	}
	if !safeID(id) {
		return nil, fmt.Errorf("journal: unsafe job ID %q", id)
	}
	j.mu.Lock()
	if e, ok := j.open[id]; ok {
		j.mu.Unlock()
		return e, nil
	}
	e := &Entry{j: j, id: id}
	j.open[id] = e
	j.mu.Unlock()
	f, err := os.OpenFile(j.path(id), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		j.mu.Lock()
		delete(j.open, id)
		j.errors++
		j.mu.Unlock()
		return nil, fmt.Errorf("journal: resuming %s: %w", id, err)
	}
	e.f = f
	j.mu.Lock()
	j.resumed++
	j.mu.Unlock()
	return e, nil
}

// Replay scans the journal directory. Entries with a terminal record
// are deleted — the job settled; in particular a journaled failure is
// dropped rather than resurrected, so resubmitting its spec starts a
// fresh run (mirroring the job store's failed/cancelled re-submission
// eviction). Entries without one are returned as Pending, oldest
// first by file name. Unparsable lines (a torn tail from a crash
// mid-append) are skipped; files whose admission line is unreadable
// are deleted as unrecoverable.
func (j *Journal) Replay() ([]Pending, error) {
	if j == nil {
		return nil, nil
	}
	names, err := filepath.Glob(filepath.Join(j.dir, "*"+suffix))
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	var out []Pending
	for _, name := range names {
		p, finished, ok := j.replayFile(name)
		if !ok || finished {
			j.mu.Lock()
			j.dropped++
			j.mu.Unlock()
			os.Remove(name)
			continue
		}
		out = append(out, p)
	}
	return out, nil
}

// replayFile parses one journal file, reporting whether it is usable
// and whether it carries a terminal record.
func (j *Journal) replayFile(name string) (p Pending, finished, ok bool) {
	f, err := os.Open(name)
	if err != nil {
		return Pending{}, false, false
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	p.Points = make(map[string]PointStatus)
	leased := make(map[string]bool)
	// Leases count only while uncompleted: a lease followed by its
	// completion is settled work, one without is the dead-lessee case.
	countLeases := func() {
		for pt := range leased {
			if _, done := p.Points[pt]; !done {
				p.Leased++
			}
		}
	}
	first := true
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var rec record
		if err := json.Unmarshal(line, &rec); err != nil {
			if first {
				return Pending{}, false, false // no readable admission
			}
			continue // torn tail or stray corruption: skip the line
		}
		if first {
			first = false
			if rec.ID == "" || len(rec.Spec) == 0 ||
				rec.ID+suffix != filepath.Base(name) {
				return Pending{}, false, false
			}
			p.ID, p.Kind, p.Tenant = rec.ID, rec.Kind, rec.Tenant
			p.Spec = append([]byte(nil), rec.Spec...)
			continue
		}
		switch {
		case rec.State != "":
			countLeases()
			return p, true, true
		case rec.Point != "" && rec.Status == StatusLeased:
			leased[rec.Point] = true
		case rec.Point != "":
			p.Points[rec.Point] = PointStatus{Status: rec.Status, Cached: rec.Cached, Attempts: rec.Attempts}
		}
	}
	if first {
		return Pending{}, false, false // empty file
	}
	countLeases()
	return p, false, true
}

// Drop removes a journal file that is not open in this process (e.g. a
// Pending entry that no longer decodes).
func (j *Journal) Drop(id string) {
	if j == nil || !safeID(id) {
		return
	}
	j.mu.Lock()
	_, open := j.open[id]
	if !open {
		j.dropped++
	}
	j.mu.Unlock()
	if !open {
		os.Remove(j.path(id))
	}
}

// Close closes every open entry without a terminal record — the
// shutdown path. Their jobs replay on the next start.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	entries := make([]*Entry, 0, len(j.open))
	for _, e := range j.open {
		entries = append(entries, e)
	}
	j.mu.Unlock()
	for _, e := range entries {
		e.close(false)
	}
	return nil
}

// Point appends one per-point completion record. The append is a
// single write without fsync: losing the tail on a crash only costs
// cache-absorbed re-runs.
func (e *Entry) Point(hash, status string, cached bool, attempts int) error {
	if e == nil {
		return nil
	}
	return e.append(record{Point: hash, Status: status, Cached: cached, Attempts: attempts}, false, &e.j.points)
}

// Lease appends a per-point lease record: holder (a fleet replica ID)
// claimed the point and is about to compute it. Like Point, the append
// is unsynced — a lost lease line only means replay treats the point
// as plain pending work, which is also what a lease means.
func (e *Entry) Lease(hash, holder string) error {
	if e == nil {
		return nil
	}
	return e.append(record{Point: hash, Status: StatusLeased, Holder: holder}, false, &e.j.leases)
}

// Finish appends the terminal record (fsynced), closes the entry and
// removes the file: a settled job has nothing left to recover, and a
// failed one must not replay as a stale failure. A crash between the
// append and the remove is harmless — Replay deletes terminal files.
func (e *Entry) Finish(state string) error {
	if e == nil {
		return nil
	}
	err := e.append(record{State: state}, true, &e.j.finished)
	e.close(true)
	return err
}

// Discard closes a freshly admitted entry and removes its file — the
// undo path for an admission whose job submission was rejected or
// joined an existing job.
func (e *Entry) Discard() {
	if e == nil {
		return
	}
	e.close(true)
}

// append writes one record line, optionally fsyncing, bumping counter.
func (e *Entry) append(rec record, sync bool, counter *uint64) error {
	line, err := marshalLine(rec)
	if err == nil {
		e.mu.Lock()
		if e.closed {
			err = fmt.Errorf("journal: entry %s closed", e.id)
		} else {
			start := time.Now()
			_, err = e.f.Write(line)
			if err == nil && sync {
				s := time.Now()
				err = e.f.Sync()
				e.j.fsyncSec.Observe(time.Since(s).Seconds())
			}
			e.j.appendSec.Observe(time.Since(start).Seconds())
		}
		e.mu.Unlock()
	}
	e.j.mu.Lock()
	if err != nil {
		e.j.errors++
	} else {
		*counter++
	}
	e.j.mu.Unlock()
	return err
}

// close closes the file, unregisters the entry, and removes the file
// when remove is set.
func (e *Entry) close(remove bool) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	if e.f != nil {
		e.f.Close()
	}
	e.mu.Unlock()
	e.j.mu.Lock()
	if cur, ok := e.j.open[e.id]; ok && cur == e {
		delete(e.j.open, e.id)
	}
	e.j.mu.Unlock()
	if remove {
		os.Remove(e.j.path(e.id))
	}
}

// ID returns the entry's job ID.
func (e *Entry) ID() string { return e.id }

func marshalLine(rec record) ([]byte, error) {
	raw, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	return append(raw, '\n'), nil
}

// Stats is a point-in-time snapshot of the journal counters.
type Stats struct {
	// Dir echoes the journal directory.
	Dir string `json:"dir"`
	// Admitted counts fresh admissions; Resumed counts replayed entries
	// reopened for appends.
	Admitted uint64 `json:"admitted"`
	Resumed  uint64 `json:"resumed"`
	// Points counts per-point completion appends; Leases per-point
	// fleet lease appends; Finished terminal records; Dropped files
	// deleted at replay or via Drop.
	Points   uint64 `json:"points"`
	Leases   uint64 `json:"leases,omitempty"`
	Finished uint64 `json:"finished"`
	Dropped  uint64 `json:"dropped"`
	// Errors counts failed journal writes (the job keeps running; only
	// durability is lost).
	Errors uint64 `json:"errors"`
	// Open is the number of entries currently accepting appends.
	Open int `json:"open"`
}

// Stats returns a snapshot of the journal's counters.
func (j *Journal) Stats() Stats {
	if j == nil {
		return Stats{}
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return Stats{
		Dir:      j.dir,
		Admitted: j.admitted,
		Resumed:  j.resumed,
		Points:   j.points,
		Leases:   j.leases,
		Finished: j.finished,
		Dropped:  j.dropped,
		Errors:   j.errors,
		Open:     len(j.open),
	}
}
