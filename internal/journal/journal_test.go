package journal

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

const specJSON = `{"base":{"experiment":"ec-latency"},"axes":[{"field":"machine.level","values":[1,2]}]}`

func open(t *testing.T) (*Journal, string) {
	t.Helper()
	dir := t.TempDir()
	j, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return j, dir
}

func files(t *testing.T, dir string) []string {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "*"+suffix))
	if err != nil {
		t.Fatal(err)
	}
	return names
}

// TestAdmitFinishRemoves: the happy path leaves nothing behind — a
// settled job has nothing to recover.
func TestAdmitFinishRemoves(t *testing.T) {
	j, dir := open(t)
	e, fresh, err := j.Admit("job1", KindSweep, "", []byte(specJSON))
	if err != nil || !fresh {
		t.Fatalf("Admit: fresh=%v err=%v", fresh, err)
	}
	if got := files(t, dir); len(got) != 1 {
		t.Fatalf("want 1 journal file after admit, got %v", got)
	}
	if err := e.Point("p1", "ok", false, 1); err != nil {
		t.Fatal(err)
	}
	if err := e.Finish("done"); err != nil {
		t.Fatal(err)
	}
	if got := files(t, dir); len(got) != 0 {
		t.Fatalf("finished entry not removed: %v", got)
	}
	st := j.Stats()
	if st.Admitted != 1 || st.Points != 1 || st.Finished != 1 || st.Open != 0 {
		t.Fatalf("unexpected stats %+v", st)
	}
}

// TestCrashReplay: an entry without a terminal record — the process
// died — replays with its recorded point completions.
func TestCrashReplay(t *testing.T) {
	j, dir := open(t)
	e, _, err := j.Admit("job1", KindSweep, "", []byte(specJSON))
	if err != nil {
		t.Fatal(err)
	}
	e.Point("p1", "ok", false, 1)
	e.Point("p2", "error", false, 3)
	e.Point("p2", "ok", true, 1) // a later record supersedes
	j.Close()                    // crash-equivalent: no terminal record

	j2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	pend, err := j2.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if len(pend) != 1 {
		t.Fatalf("want 1 pending entry, got %d", len(pend))
	}
	p := pend[0]
	if p.ID != "job1" || p.Kind != KindSweep || string(p.Spec) != specJSON {
		t.Fatalf("unexpected pending %+v", p)
	}
	if len(p.Points) != 2 {
		t.Fatalf("want 2 recorded points, got %v", p.Points)
	}
	if got := p.Points["p2"]; got.Status != "ok" || !got.Cached {
		t.Fatalf("p2 should reflect the last record, got %+v", got)
	}
	// Resume and settle it.
	e2, err := j2.Resume("job1")
	if err != nil {
		t.Fatal(err)
	}
	if err := e2.Point("p3", "ok", false, 1); err != nil {
		t.Fatal(err)
	}
	if err := e2.Finish("done"); err != nil {
		t.Fatal(err)
	}
	if got := files(t, dir); len(got) != 0 {
		t.Fatalf("resumed+finished entry not removed: %v", got)
	}
}

// TestTerminalEntriesDroppedAtReplay: a journaled terminal state —
// including a failure — is never resurrected; replay deletes the file
// so a re-submission of the same spec starts fresh (mirroring the job
// store's failed/cancelled re-submission eviction).
func TestTerminalEntriesDroppedAtReplay(t *testing.T) {
	for _, state := range []string{"done", "failed", "cancelled"} {
		t.Run(state, func(t *testing.T) {
			j, dir := open(t)
			e, _, err := j.Admit("job1", KindSweep, "", []byte(specJSON))
			if err != nil {
				t.Fatal(err)
			}
			e.Point("p1", "error", false, 3)
			// Write the terminal record but simulate dying before the
			// remove: append directly, then close without removing.
			line, _ := marshalLine(record{State: state})
			e.mu.Lock()
			e.f.Write(line)
			e.mu.Unlock()
			j.Close()
			if got := files(t, dir); len(got) != 1 {
				t.Fatalf("setup: want the file present, got %v", got)
			}

			j2, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			pend, err := j2.Replay()
			if err != nil {
				t.Fatal(err)
			}
			if len(pend) != 0 {
				t.Fatalf("terminal %q entry replayed: %+v", state, pend)
			}
			if got := files(t, dir); len(got) != 0 {
				t.Fatalf("terminal %q entry not deleted at replay: %v", state, got)
			}
		})
	}
}

// TestTornTailTolerated: a crash mid-append leaves a partial final
// line; replay keeps everything before it.
func TestTornTailTolerated(t *testing.T) {
	j, dir := open(t)
	e, _, err := j.Admit("job1", KindSweep, "", []byte(specJSON))
	if err != nil {
		t.Fatal(err)
	}
	e.Point("p1", "ok", false, 1)
	e.mu.Lock()
	e.f.Write([]byte(`{"point":"p2","sta`)) // torn write
	e.mu.Unlock()
	j.Close()

	j2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	pend, err := j2.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if len(pend) != 1 || len(pend[0].Points) != 1 {
		t.Fatalf("want 1 pending with 1 point, got %+v", pend)
	}
}

// TestUnreadableAdmissionDeleted: a file whose first line does not
// parse (or names a different ID than the file) is unrecoverable and
// removed.
func TestUnreadableAdmissionDeleted(t *testing.T) {
	j, dir := open(t)
	os.WriteFile(filepath.Join(dir, "garbage"+suffix), []byte("not json\n"), 0o644)
	os.WriteFile(filepath.Join(dir, "mismatch"+suffix),
		[]byte(`{"v":1,"id":"other","kind":"sweep","spec":{}}`+"\n"), 0o644)
	pend, err := j.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if len(pend) != 0 {
		t.Fatalf("unreadable entries replayed: %+v", pend)
	}
	if got := files(t, dir); len(got) != 0 {
		t.Fatalf("unreadable entries not deleted: %v", got)
	}
}

// TestAdmitJoinsOpenEntry: a second admission of a running job's ID
// returns the same entry without touching the file.
func TestAdmitJoinsOpenEntry(t *testing.T) {
	j, _ := open(t)
	e1, fresh1, err := j.Admit("job1", KindSweep, "", []byte(specJSON))
	if err != nil || !fresh1 {
		t.Fatalf("first admit: fresh=%v err=%v", fresh1, err)
	}
	e1.Point("p1", "ok", false, 1)
	e2, fresh2, err := j.Admit("job1", KindSweep, "", []byte(specJSON))
	if err != nil || fresh2 {
		t.Fatalf("second admit: fresh=%v err=%v", fresh2, err)
	}
	if e1 != e2 {
		t.Fatal("second admit did not join the open entry")
	}
}

// TestDiscard: the undo path for a rejected submission removes the
// freshly admitted file.
func TestDiscard(t *testing.T) {
	j, dir := open(t)
	e, _, err := j.Admit("job1", KindSweep, "", []byte(specJSON))
	if err != nil {
		t.Fatal(err)
	}
	e.Discard()
	if got := files(t, dir); len(got) != 0 {
		t.Fatalf("discarded entry left a file: %v", got)
	}
	if j.Stats().Open != 0 {
		t.Fatal("discarded entry still registered")
	}
}

func TestUnsafeIDRejected(t *testing.T) {
	j, _ := open(t)
	for _, id := range []string{"", "..", "a/b", `a\b`} {
		if _, _, err := j.Admit(id, KindSweep, "", []byte(specJSON)); err == nil {
			t.Errorf("Admit(%q) accepted", id)
		}
	}
}

// TestNilJournalIsInert: every method on a nil *Journal (and the nil
// *Entry it hands back) is a safe no-op, so callers need no journal
// guards.
func TestNilJournalIsInert(t *testing.T) {
	var j *Journal
	e, fresh, err := j.Admit("x", KindSweep, "", nil)
	if e != nil || fresh || err != nil {
		t.Fatalf("nil Admit: %v %v %v", e, fresh, err)
	}
	if err := e.Point("p", "ok", false, 1); err != nil {
		t.Fatal(err)
	}
	if err := e.Finish("done"); err != nil {
		t.Fatal(err)
	}
	e.Discard()
	if _, err := j.Replay(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j.Drop("x")
	if st := j.Stats(); st.Admitted != 0 {
		t.Fatalf("nil stats %+v", st)
	}
}

// TestConcurrentAppends: point records from concurrent workers all
// land (json-per-line, single write each).
func TestConcurrentAppends(t *testing.T) {
	j, dir := open(t)
	e, _, err := j.Admit("job1", KindSweep, "", []byte(specJSON))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	const n = 64
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e.Point(fmt.Sprintf("p%02d", i), "ok", false, 1)
		}(i)
	}
	wg.Wait()
	j.Close()
	j2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	pend, err := j2.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if len(pend) != 1 || len(pend[0].Points) != n {
		t.Fatalf("want %d points, got %d", n, len(pend[0].Points))
	}
}

func BenchmarkJournalAppend(b *testing.B) {
	j, err := Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	e, _, err := j.Admit("bench", KindSweep, "", []byte(specJSON))
	if err != nil {
		b.Fatal(err)
	}
	hash := strings.Repeat("ab", 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Point(hash, "ok", false, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// TestLeaseReplay: lease records are a ledger, not completions — a
// leased-but-never-completed point replays as pending work (the dead
// lessee case), while a lease followed by its completion is settled.
func TestLeaseReplay(t *testing.T) {
	j, dir := open(t)
	e, _, err := j.Admit("job1", KindSweep, "", []byte(specJSON))
	if err != nil {
		t.Fatal(err)
	}
	e.Lease("p1", "replica-a")
	e.Point("p1", "ok", false, 1) // lease settled by its completion
	e.Lease("p2", "replica-a")    // claimed, never finished: the crash
	j.Close()

	j2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	pend, err := j2.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if len(pend) != 1 {
		t.Fatalf("want 1 pending entry, got %d", len(pend))
	}
	p := pend[0]
	if len(p.Points) != 1 {
		t.Fatalf("lease records leaked into completions: %v", p.Points)
	}
	if _, done := p.Points["p2"]; done {
		t.Fatal("leased-but-unfinished point recorded as complete")
	}
	if p.Leased != 1 {
		t.Fatalf("Leased = %d, want 1 (p2 only; p1's lease completed)", p.Leased)
	}
	if st := j.Stats(); st.Leases != 2 {
		t.Fatalf("lease appends = %d, want 2: %+v", st.Leases, st)
	}
}
