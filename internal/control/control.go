// Package control models the classical resources that drive a QLA
// machine — the part of the system the paper's Section 6 singles out as
// decisive for physical realization: "the control of lasers for precise
// manipulation of thousands of logical qubits; the amount of laser
// power possible; the number of photodetectors required for
// measurement; and even the wiring of the electrodes".
//
// Given a timed pulse schedule (the output of the ARQ lowering pass,
// internal/arq.Job.Lower), the package computes:
//
//   - the peak number of simultaneously firing lasers, both with one
//     laser per ion and under SIMD grouping, where simultaneous pulses
//     of the same gate type share a single laser fanned out through a
//     MEMS mirror array (the Lucent LambdaRouter technique the paper
//     cites in Section 3);
//   - the photodetector count (peak concurrent fluorescence readouts);
//   - the classical-control event rate the surrounding processors must
//     sustain, compared against the paper's observation that quantum
//     latencies are orders of magnitude above classical ones;
//   - electrode-wiring totals for a floorplan.
package control

import (
	"fmt"
	"sort"

	"qla/internal/arq"
	"qla/internal/circuit"
	"qla/internal/layout"
)

// Budget is the classical-resource bill for one pulse schedule.
type Budget struct {
	// Ops is the number of scheduled pulses.
	Ops int
	// Makespan is the schedule's wall-clock span in seconds.
	Makespan float64
	// PeakLasers is the peak number of concurrent laser pulses with a
	// dedicated laser per target (no sharing).
	PeakLasers int
	// PeakLasersSIMD is the peak laser count when concurrent pulses of
	// the same gate type share one laser through MEMS fanout.
	PeakLasersSIMD int
	// PeakDetectors is the peak number of concurrent measurements.
	PeakDetectors int
	// MeanEventRate is scheduled pulses per second over the makespan —
	// the classical dispatch rate the control processors must sustain.
	MeanEventRate float64
	// PeakEventRate is the largest number of pulse starts in any
	// window of EventWindow seconds.
	PeakEventRate float64
	// EventWindow is the sliding window used for PeakEventRate.
	EventWindow float64
}

// Option configures AnalyzeSchedule.
type Option func(*config)

type config struct {
	eventWindow float64
}

// WithEventWindow sets the sliding window (in seconds) used for the
// peak control-event rate; non-positive keeps the 10 µs default.
func WithEventWindow(seconds float64) Option {
	return func(c *config) { c.eventWindow = seconds }
}

// AnalyzeSchedule computes the classical-resource budget of a pulse
// schedule under functional options (the Engine-era entry point;
// Analyze remains for positional callers).
func AnalyzeSchedule(pulses []arq.PulseOp, opts ...Option) Budget {
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	return Analyze(pulses, cfg.eventWindow)
}

// laserDriven reports whether the op class is implemented by a laser
// pulse (gates, preparation and measurement are; pure transport is
// electrode-driven).
func laserDriven(t circuit.OpType) bool {
	return t != circuit.Move
}

type edge struct {
	t     float64
	delta int
	kind  circuit.OpType
}

// Analyze computes the classical-resource budget of a pulse schedule.
// The event window defaults to 10 µs when non-positive.
func Analyze(pulses []arq.PulseOp, eventWindow float64) Budget {
	if eventWindow <= 0 {
		eventWindow = 10e-6
	}
	b := Budget{Ops: len(pulses), EventWindow: eventWindow}
	if len(pulses) == 0 {
		return b
	}

	var edges []edge
	var starts []float64
	for _, p := range pulses {
		if end := p.Start + p.Duration; end > b.Makespan {
			b.Makespan = end
		}
		starts = append(starts, p.Start)
		if !laserDriven(p.Op.Type) {
			continue
		}
		edges = append(edges, edge{p.Start, +1, p.Op.Type})
		edges = append(edges, edge{p.Start + p.Duration, -1, p.Op.Type})
	}
	// Peak concurrency sweeps: ends sort before starts at equal time so
	// back-to-back pulses on one qubit need one laser, not two.
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].t != edges[j].t {
			return edges[i].t < edges[j].t
		}
		return edges[i].delta < edges[j].delta
	})
	cur := 0
	curByType := map[circuit.OpType]int{}
	curDetectors := 0
	simdPeak := 0
	for _, e := range edges {
		cur += e.delta
		curByType[e.kind] += e.delta
		if e.kind.IsMeasurement() {
			curDetectors += e.delta
		}
		if cur > b.PeakLasers {
			b.PeakLasers = cur
		}
		if curDetectors > b.PeakDetectors {
			b.PeakDetectors = curDetectors
		}
		simd := 0
		for _, n := range curByType {
			if n > 0 {
				simd++
			}
		}
		if simd > simdPeak {
			simdPeak = simd
		}
	}
	b.PeakLasersSIMD = simdPeak

	if b.Makespan > 0 {
		b.MeanEventRate = float64(len(pulses)) / b.Makespan
	}
	// Peak dispatch rate over a sliding window.
	sort.Float64s(starts)
	lo := 0
	peak := 0
	for hi := range starts {
		for starts[hi]-starts[lo] > eventWindow {
			lo++
		}
		if n := hi - lo + 1; n > peak {
			peak = n
		}
	}
	b.PeakEventRate = float64(peak) / eventWindow
	return b
}

// Wiring is the electrode-control estimate for a floorplan.
type Wiring struct {
	// Cells is the total cell count of the chip.
	Cells int
	// Electrodes assumes the paper's segmented-trap structure: three
	// control electrodes per trap cell.
	Electrodes int
	// DACChannels assumes one digital-analog channel per electrode.
	DACChannels int
}

// ElectrodesPerCell is the segmented RF Paul trap electrode count per
// 20 µm cell (one RF rail shared, two DC segments plus one control pad
// per cell in the Kielpinski-style geometry).
const ElectrodesPerCell = 3

// WiringFor estimates electrode wiring for a floorplan.
func WiringFor(f layout.Floorplan) Wiring {
	cells := f.WidthCells() * f.HeightCells()
	return Wiring{
		Cells:       cells,
		Electrodes:  cells * ElectrodesPerCell,
		DACChannels: cells * ElectrodesPerCell,
	}
}

// LaserFeasibility compares a budget against an available laser count,
// returning an error naming the shortfall. SIMD grouping is assumed,
// per the paper's stated scaling strategy.
func LaserFeasibility(b Budget, lasersAvailable int) error {
	if lasersAvailable <= 0 {
		return fmt.Errorf("control: no lasers available")
	}
	if b.PeakLasersSIMD > lasersAvailable {
		return fmt.Errorf("control: schedule needs %d SIMD laser groups, only %d lasers available",
			b.PeakLasersSIMD, lasersAvailable)
	}
	return nil
}

// ClassicalHeadroom returns the ratio between the control deadline (one
// single-qubit gate time, the shortest quantum latency) and a classical
// processor cycle at the given clock rate: how many classical cycles
// fit inside the tightest quantum scheduling window. The paper argues
// this ratio is large ("several orders of magnitude"), making run-time
// scheduling by classical processors easy.
func ClassicalHeadroom(gateSeconds float64, clockHz float64) float64 {
	if gateSeconds <= 0 || clockHz <= 0 {
		return 0
	}
	return gateSeconds * clockHz
}
