package control

import (
	"strings"
	"testing"

	"qla/internal/arq"
	"qla/internal/circuit"
	"qla/internal/iontrap"
	"qla/internal/layout"
)

func scheduleFor(t *testing.T, build func(c *circuit.Circuit)) []arq.PulseOp {
	t.Helper()
	c := circuit.New(8)
	build(c)
	j, err := arq.NewJob(c)
	if err != nil {
		t.Fatal(err)
	}
	return j.Lower()
}

func TestEmptySchedule(t *testing.T) {
	b := Analyze(nil, 0)
	if b.Ops != 0 || b.PeakLasers != 0 || b.Makespan != 0 {
		t.Fatalf("empty budget %+v", b)
	}
	if b.EventWindow != 10e-6 {
		t.Fatalf("default window %g", b.EventWindow)
	}
}

// TestPeakLasersParallelGates: n simultaneous H gates need n dedicated
// lasers but only one SIMD group.
func TestPeakLasersParallelGates(t *testing.T) {
	pulses := scheduleFor(t, func(c *circuit.Circuit) {
		for q := 0; q < 8; q++ {
			c.H(q)
		}
	})
	b := Analyze(pulses, 0)
	if b.PeakLasers != 8 {
		t.Fatalf("peak lasers %d, want 8", b.PeakLasers)
	}
	if b.PeakLasersSIMD != 1 {
		t.Fatalf("SIMD groups %d, want 1 (all gates identical)", b.PeakLasersSIMD)
	}
}

// TestSIMDGroupsByGateType: simultaneous H and X pulses need two SIMD
// groups.
func TestSIMDGroupsByGateType(t *testing.T) {
	pulses := scheduleFor(t, func(c *circuit.Circuit) {
		for q := 0; q < 4; q++ {
			c.H(q)
		}
		for q := 4; q < 8; q++ {
			c.X(q)
		}
	})
	b := Analyze(pulses, 0)
	if b.PeakLasersSIMD != 2 {
		t.Fatalf("SIMD groups %d, want 2", b.PeakLasersSIMD)
	}
	if b.PeakLasers != 8 {
		t.Fatalf("peak lasers %d, want 8", b.PeakLasers)
	}
}

// TestSerialChainNeedsOneLaser: a dependency chain on one qubit keeps
// concurrency at 1.
func TestSerialChainNeedsOneLaser(t *testing.T) {
	pulses := scheduleFor(t, func(c *circuit.Circuit) {
		c.H(0).S(0).H(0).S(0)
	})
	b := Analyze(pulses, 0)
	if b.PeakLasers != 1 || b.PeakLasersSIMD != 1 {
		t.Fatalf("serial chain peaks %d/%d, want 1/1", b.PeakLasers, b.PeakLasersSIMD)
	}
}

// TestDetectorsCountMeasurements: concurrent readouts set the
// photodetector requirement; gates do not.
func TestDetectorsCountMeasurements(t *testing.T) {
	pulses := scheduleFor(t, func(c *circuit.Circuit) {
		for q := 0; q < 5; q++ {
			c.MeasureZ(q)
		}
		c.H(5)
	})
	b := Analyze(pulses, 0)
	if b.PeakDetectors != 5 {
		t.Fatalf("detectors %d, want 5", b.PeakDetectors)
	}
}

// TestMoveIsNotLaserDriven: transport contributes no laser pulses.
func TestMoveIsNotLaserDriven(t *testing.T) {
	c := circuit.New(2)
	c.Move(0, 10, 1) // 10 cells, 1 corner
	j, err := arq.NewJob(c)
	if err != nil {
		t.Fatal(err)
	}
	b := Analyze(j.Lower(), 0)
	if b.PeakLasers != 0 {
		t.Fatalf("move needed %d lasers, want 0", b.PeakLasers)
	}
	if b.Ops != 1 || b.Makespan <= 0 {
		t.Fatalf("budget %+v", b)
	}
}

func TestEventRates(t *testing.T) {
	pulses := scheduleFor(t, func(c *circuit.Circuit) {
		for q := 0; q < 8; q++ {
			c.H(q)
		}
	})
	b := Analyze(pulses, 1e-6)
	if b.MeanEventRate <= 0 || b.PeakEventRate <= 0 {
		t.Fatalf("rates %+v", b)
	}
	// All eight pulses start at t=0, inside one window.
	if want := 8 / 1e-6; b.PeakEventRate != want {
		t.Fatalf("peak event rate %g, want %g", b.PeakEventRate, want)
	}
}

func TestWiringFor(t *testing.T) {
	f, err := layout.NewFloorplan(4)
	if err != nil {
		t.Fatal(err)
	}
	w := WiringFor(f)
	if w.Cells != f.WidthCells()*f.HeightCells() {
		t.Fatalf("cells %d", w.Cells)
	}
	if w.Electrodes != w.Cells*ElectrodesPerCell || w.DACChannels != w.Electrodes {
		t.Fatalf("wiring %+v", w)
	}
}

func TestLaserFeasibility(t *testing.T) {
	b := Budget{PeakLasersSIMD: 3}
	if err := LaserFeasibility(b, 3); err != nil {
		t.Fatal(err)
	}
	err := LaserFeasibility(b, 2)
	if err == nil || !strings.Contains(err.Error(), "3 SIMD") {
		t.Fatalf("want shortfall error, got %v", err)
	}
	if err := LaserFeasibility(b, 0); err == nil {
		t.Fatal("zero lasers accepted")
	}
}

// TestClassicalHeadroom pins the paper's argument: a 1 GHz classical
// processor has ~1000 cycles inside a 1 µs gate window.
func TestClassicalHeadroom(t *testing.T) {
	p := iontrap.Expected()
	h := ClassicalHeadroom(p.Time[iontrap.OpSingle], 1e9)
	if h != 1000 {
		t.Fatalf("headroom %g, want 1000", h)
	}
	if ClassicalHeadroom(0, 1e9) != 0 || ClassicalHeadroom(1e-6, 0) != 0 {
		t.Fatal("degenerate inputs should yield 0")
	}
}

// TestBackToBackPulsesShareLaser: sequential pulses on the same qubit
// meet end-to-start and must not double-count at the boundary instant.
func TestBackToBackPulsesShareLaser(t *testing.T) {
	pulses := []arq.PulseOp{
		{Start: 0, Duration: 1e-6, Op: circuit.Op{Type: circuit.H, Q: [2]int{0, -1}}},
		{Start: 1e-6, Duration: 1e-6, Op: circuit.Op{Type: circuit.H, Q: [2]int{0, -1}}},
	}
	b := Analyze(pulses, 0)
	if b.PeakLasers != 1 {
		t.Fatalf("boundary double-count: peak %d, want 1", b.PeakLasers)
	}
}

func BenchmarkAnalyze(b *testing.B) {
	c := circuit.New(64)
	for rep := 0; rep < 20; rep++ {
		for q := 0; q < 64; q++ {
			c.H(q)
		}
		for q := 0; q+1 < 64; q += 2 {
			c.CNOT(q, q+1)
		}
	}
	j, err := arq.NewJob(c)
	if err != nil {
		b.Fatal(err)
	}
	pulses := j.Lower()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Analyze(pulses, 0)
	}
}
