package revcirc

import (
	"math/rand/v2"
	"strings"
	"testing"
	"testing/quick"
)

func TestGateSemantics(t *testing.T) {
	c := New(3)
	c.X(0)
	if got := c.RunUint(0); got != 1 {
		t.Fatalf("X: got %b, want 1", got)
	}

	c = New(3)
	c.CNOT(0, 1)
	if got := c.RunUint(0b001); got != 0b011 {
		t.Fatalf("CNOT fires: got %03b, want 011", got)
	}
	if got := c.RunUint(0b000); got != 0b000 {
		t.Fatalf("CNOT idle: got %03b, want 000", got)
	}

	c = New(3)
	c.Toffoli(0, 1, 2)
	if got := c.RunUint(0b011); got != 0b111 {
		t.Fatalf("Toffoli fires: got %03b, want 111", got)
	}
	for _, in := range []uint64{0b000, 0b001, 0b010} {
		if got := c.RunUint(in); got != in {
			t.Fatalf("Toffoli idle on %03b: got %03b", in, got)
		}
	}
}

func TestRunMatchesRunUint(t *testing.T) {
	r := rand.New(rand.NewPCG(7, 9))
	for trial := 0; trial < 200; trial++ {
		n := 1 + r.IntN(12)
		c := randomCircuit(r, n, 1+r.IntN(60))
		in := r.Uint64() & (1<<uint(n) - 1)
		bits := make([]bool, n)
		for i := range bits {
			bits[i] = in>>uint(i)&1 == 1
		}
		out := c.Run(bits)
		var packed uint64
		for i, b := range out {
			if b {
				packed |= 1 << uint(i)
			}
		}
		if got := c.RunUint(in); got != packed {
			t.Fatalf("n=%d trial=%d: RunUint=%b Run=%b", n, trial, got, packed)
		}
	}
}

func randomCircuit(r *rand.Rand, n, gates int) *Circuit {
	c := New(n)
	for i := 0; i < gates; i++ {
		switch k := r.IntN(3); {
		case k == 0 || n < 2:
			c.X(r.IntN(n))
		case k == 1 || n < 3:
			a, t := distinct2(r, n)
			c.CNOT(a, t)
		default:
			a, b, tt := distinct3(r, n)
			c.Toffoli(a, b, tt)
		}
	}
	return c
}

func distinct2(r *rand.Rand, n int) (int, int) {
	a := r.IntN(n)
	b := r.IntN(n)
	for b == a {
		b = r.IntN(n)
	}
	return a, b
}

func distinct3(r *rand.Rand, n int) (int, int, int) {
	a, b := distinct2(r, n)
	c := r.IntN(n)
	for c == a || c == b {
		c = r.IntN(n)
	}
	return a, b, c
}

// Property: a circuit followed by its inverse is the identity.
func TestQuickInverseRoundTrip(t *testing.T) {
	f := func(seed uint64, nRaw, gRaw uint8, in uint64) bool {
		r := rand.New(rand.NewPCG(seed, seed^0x51))
		n := 3 + int(nRaw%14)
		c := randomCircuit(r, n, 1+int(gRaw)%80)
		c.Append(c.Inverse())
		x := in & (1<<uint(n) - 1)
		return c.RunUint(x) == x
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Property: every circuit in this alphabet is a permutation — distinct
// inputs map to distinct outputs (checked on small widths exhaustively).
func TestQuickPermutation(t *testing.T) {
	f := func(seed uint64, gRaw uint8) bool {
		r := rand.New(rand.NewPCG(seed, seed^0x99))
		n := 2 + int(seed%4)
		c := randomCircuit(r, n, 1+int(gRaw)%40)
		seen := make(map[uint64]bool, 1<<uint(n))
		for x := uint64(0); x < 1<<uint(n); x++ {
			y := c.RunUint(x)
			if seen[y] {
				return false
			}
			seen[y] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestCounts(t *testing.T) {
	c := New(4)
	c.X(0).CNOT(0, 1).Toffoli(0, 1, 2).Toffoli(1, 2, 3).CNOT(2, 3)
	got := c.Counts()
	want := Counts{Not: 1, CNot: 2, Toffoli: 2}
	if got != want {
		t.Fatalf("Counts = %+v, want %+v", got, want)
	}
	if got.Total() != 5 {
		t.Fatalf("Total = %d, want 5", got.Total())
	}
}

func TestDepth(t *testing.T) {
	// Parallel gates on disjoint wires count once.
	c := New(4)
	c.CNOT(0, 1)
	c.CNOT(2, 3)
	if d := c.Depth(); d != 1 {
		t.Fatalf("disjoint depth = %d, want 1", d)
	}
	// A serial chain counts each gate.
	c = New(3)
	c.CNOT(0, 1).CNOT(1, 2).CNOT(0, 1)
	if d := c.Depth(); d != 3 {
		t.Fatalf("chain depth = %d, want 3", d)
	}
}

func TestToffoliDepthIgnoresClifford(t *testing.T) {
	c := New(4)
	c.CNOT(0, 1).CNOT(1, 2).CNOT(2, 3) // free
	c.Toffoli(0, 1, 2)
	c.CNOT(2, 3)
	c.Toffoli(1, 2, 3) // depends on previous Toffoli through wire 2
	if d := c.ToffoliDepth(); d != 2 {
		t.Fatalf("ToffoliDepth = %d, want 2", d)
	}
	// Disjoint Toffolis are one layer.
	c = New(6)
	c.Toffoli(0, 1, 2)
	c.Toffoli(3, 4, 5)
	if d := c.ToffoliDepth(); d != 1 {
		t.Fatalf("parallel ToffoliDepth = %d, want 1", d)
	}
}

func TestToffoliDepthSharedControlSerializes(t *testing.T) {
	// Two Toffolis sharing only a control wire still occupy the wire.
	c := New(5)
	c.Toffoli(0, 1, 2)
	c.Toffoli(0, 3, 4)
	if d := c.ToffoliDepth(); d != 2 {
		t.Fatalf("shared-control ToffoliDepth = %d, want 2", d)
	}
}

func TestString(t *testing.T) {
	c := New(3)
	c.X(2).CNOT(0, 1).Toffoli(0, 1, 2)
	s := c.String()
	for _, want := range []string{"wires 3", "x 2", "cx 0 1", "ccx 0 1 2"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func()
	}{
		{"zero width", func() { New(0) }},
		{"X out of range", func() { New(2).X(2) }},
		{"CNOT same wire", func() { New(2).CNOT(1, 1) }},
		{"Toffoli duplicate", func() { New(3).Toffoli(0, 0, 1) }},
		{"Toffoli target is control", func() { New(3).Toffoli(0, 1, 1) }},
		{"append width mismatch", func() { New(2).Append(New(3)) }},
		{"run width mismatch", func() { New(2).Run(make([]bool, 3)) }},
		{"runuint too wide", func() { New(65).RunUint(0) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", tc.name)
				}
			}()
			tc.fn()
		})
	}
}

func TestInverseDoesNotAliasOriginal(t *testing.T) {
	c := New(2)
	c.CNOT(0, 1)
	inv := c.Inverse()
	c.X(0)
	if inv.Len() != 1 {
		t.Fatalf("inverse mutated by original: len=%d", inv.Len())
	}
}

func BenchmarkRunUint64Wires(b *testing.B) {
	r := rand.New(rand.NewPCG(3, 5))
	c := randomCircuit(r, 64, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.RunUint(uint64(i))
	}
}

func BenchmarkToffoliDepth(b *testing.B) {
	r := rand.New(rand.NewPCG(3, 5))
	c := randomCircuit(r, 64, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.ToffoliDepth()
	}
}
