// Package revcirc implements a reversible classical circuit model over
// bits: NOT, CNOT and Toffoli (CCNOT) gates acting on a register of n
// wires.
//
// The QLA paper's arithmetic workload (Section 5) is built from exactly
// this gate set: the quantum carry-lookahead adder of Draper, Kutin,
// Rains and Svore and the modular-exponentiation circuits of Van Meter
// and Itoh are permutation circuits — on computational-basis inputs they
// compute classical reversible arithmetic. Package revcirc provides the
// circuit IR, a bit-vector executor used to verify the adders in package
// adder exhaustively, and the depth metrics (total depth and Toffoli
// depth) that the paper's latency model consumes.
//
// Toffoli gates are not Clifford gates, so they cannot run on the
// stabilizer backend in internal/stabilizer; on basis states they are
// classical, which is why this package exists. The QLA cost model charges
// each Toffoli its fault-tolerant construction cost (internal/ft); this
// package supplies the counts and critical-path depths that the cost
// model multiplies.
package revcirc

import (
	"fmt"
	"strings"
)

// Kind enumerates the reversible gate alphabet.
type Kind int

const (
	// Not inverts the target wire.
	Not Kind = iota
	// CNot inverts the target wire if the control is 1.
	CNot
	// Toffoli inverts the target wire if both controls are 1.
	Toffoli
)

// String returns the conventional gate name.
func (k Kind) String() string {
	switch k {
	case Not:
		return "NOT"
	case CNot:
		return "CNOT"
	case Toffoli:
		return "TOFFOLI"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Gate is one reversible gate. A and B are control wires (B unused for
// NOT and CNOT; A unused for NOT); T is the target wire.
type Gate struct {
	Kind Kind
	A, B int
	T    int
}

// Wires returns the wires the gate touches, controls first.
func (g Gate) Wires() []int {
	switch g.Kind {
	case Not:
		return []int{g.T}
	case CNot:
		return []int{g.A, g.T}
	default:
		return []int{g.A, g.B, g.T}
	}
}

// String renders the gate in the textual form used by Circuit.String.
func (g Gate) String() string {
	switch g.Kind {
	case Not:
		return fmt.Sprintf("x %d", g.T)
	case CNot:
		return fmt.Sprintf("cx %d %d", g.A, g.T)
	default:
		return fmt.Sprintf("ccx %d %d %d", g.A, g.B, g.T)
	}
}

// Circuit is an ordered list of reversible gates over n wires.
type Circuit struct {
	n     int
	gates []Gate
}

// New returns an empty circuit over n wires. n must be positive.
func New(n int) *Circuit {
	if n <= 0 {
		panic(fmt.Sprintf("revcirc: non-positive width %d", n))
	}
	return &Circuit{n: n}
}

// N returns the number of wires.
func (c *Circuit) N() int { return c.n }

// Len returns the number of gates.
func (c *Circuit) Len() int { return len(c.gates) }

// Gates returns the gate list. The slice is shared; callers must not
// modify it.
func (c *Circuit) Gates() []Gate { return c.gates }

func (c *Circuit) check(w int) {
	if w < 0 || w >= c.n {
		panic(fmt.Sprintf("revcirc: wire %d out of range [0,%d)", w, c.n))
	}
}

// X appends a NOT gate on wire t.
func (c *Circuit) X(t int) *Circuit {
	c.check(t)
	c.gates = append(c.gates, Gate{Kind: Not, T: t})
	return c
}

// CNOT appends a controlled-NOT with control a and target t.
func (c *Circuit) CNOT(a, t int) *Circuit {
	c.check(a)
	c.check(t)
	if a == t {
		panic("revcirc: CNOT control equals target")
	}
	c.gates = append(c.gates, Gate{Kind: CNot, A: a, T: t})
	return c
}

// Toffoli appends a CCNOT with controls a, b and target t.
func (c *Circuit) Toffoli(a, b, t int) *Circuit {
	c.check(a)
	c.check(b)
	c.check(t)
	if a == b || a == t || b == t {
		panic("revcirc: Toffoli wires must be distinct")
	}
	c.gates = append(c.gates, Gate{Kind: Toffoli, A: a, B: b, T: t})
	return c
}

// Append appends every gate of d (which must have the same width).
func (c *Circuit) Append(d *Circuit) *Circuit {
	if d.n != c.n {
		panic(fmt.Sprintf("revcirc: width mismatch %d != %d", d.n, c.n))
	}
	c.gates = append(c.gates, d.gates...)
	return c
}

// Inverse returns a new circuit that undoes c. Every gate in the
// alphabet is self-inverse, so the inverse is the gate list reversed.
func (c *Circuit) Inverse() *Circuit {
	inv := &Circuit{n: c.n, gates: make([]Gate, len(c.gates))}
	for i, g := range c.gates {
		inv.gates[len(c.gates)-1-i] = g
	}
	return inv
}

// AppendMapped appends every gate of d with its wires renamed through
// the mapping: wire i of d becomes wire mapping[i] of c. The mapping
// must cover d's width with distinct, in-range wires. This is the
// embedding primitive composite circuits (modular arithmetic) use to
// place sub-circuits onto register slices.
func (c *Circuit) AppendMapped(d *Circuit, mapping []int) *Circuit {
	if len(mapping) != d.n {
		panic(fmt.Sprintf("revcirc: mapping covers %d wires, want %d", len(mapping), d.n))
	}
	seen := make(map[int]bool, len(mapping))
	for _, w := range mapping {
		c.check(w)
		if seen[w] {
			panic(fmt.Sprintf("revcirc: duplicate wire %d in mapping", w))
		}
		seen[w] = true
	}
	for _, g := range d.gates {
		ng := Gate{Kind: g.Kind, T: mapping[g.T]}
		switch g.Kind {
		case CNot:
			ng.A = mapping[g.A]
		case Toffoli:
			ng.A = mapping[g.A]
			ng.B = mapping[g.B]
		}
		c.gates = append(c.gates, ng)
	}
	return c
}

// Run executes the circuit on the given input bits and returns the
// output. The input length must equal the circuit width. The input
// slice is not modified.
func (c *Circuit) Run(in []bool) []bool {
	if len(in) != c.n {
		panic(fmt.Sprintf("revcirc: input width %d != circuit width %d", len(in), c.n))
	}
	state := make([]bool, c.n)
	copy(state, in)
	for _, g := range c.gates {
		switch g.Kind {
		case Not:
			state[g.T] = !state[g.T]
		case CNot:
			if state[g.A] {
				state[g.T] = !state[g.T]
			}
		case Toffoli:
			if state[g.A] && state[g.B] {
				state[g.T] = !state[g.T]
			}
		}
	}
	return state
}

// RunUint executes the circuit on a bit-packed input (wire i is bit i).
// It panics if the circuit is wider than 64 wires.
func (c *Circuit) RunUint(x uint64) uint64 {
	if c.n > 64 {
		panic(fmt.Sprintf("revcirc: width %d exceeds 64-bit executor", c.n))
	}
	for _, g := range c.gates {
		switch g.Kind {
		case Not:
			x ^= 1 << uint(g.T)
		case CNot:
			x ^= (x >> uint(g.A) & 1) << uint(g.T)
		case Toffoli:
			x ^= (x >> uint(g.A) & 1) & (x >> uint(g.B) & 1) << uint(g.T)
		}
	}
	return x
}

// Counts reports how many gates of each kind the circuit contains.
type Counts struct {
	Not, CNot, Toffoli int
}

// Total returns the total gate count.
func (c Counts) Total() int { return c.Not + c.CNot + c.Toffoli }

// Counts tallies the circuit's gates by kind.
func (c *Circuit) Counts() Counts {
	var k Counts
	for _, g := range c.gates {
		switch g.Kind {
		case Not:
			k.Not++
		case CNot:
			k.CNot++
		default:
			k.Toffoli++
		}
	}
	return k
}

// Depth returns the ASAP depth of the circuit: the length of the longest
// chain of gates that share a wire, counting every gate as one time step.
func (c *Circuit) Depth() int {
	return c.weightedDepth(func(Kind) int { return 1 })
}

// ToffoliDepth returns the Toffoli-weighted critical-path length: the
// ASAP schedule where Toffoli gates take one time step and NOT/CNOT
// gates are free. This is the depth measure used by the QLA latency
// model, where each Toffoli costs a fault-tolerant construction
// (internal/ft.ToffoliECSteps) and Clifford gates are transversal
// single-EC-step operations hidden under it.
func (c *Circuit) ToffoliDepth() int {
	return c.weightedDepth(func(k Kind) int {
		if k == Toffoli {
			return 1
		}
		return 0
	})
}

func (c *Circuit) weightedDepth(weight func(Kind) int) int {
	avail := make([]int, c.n)
	max := 0
	for _, g := range c.gates {
		start := 0
		for _, w := range g.Wires() {
			if avail[w] > start {
				start = avail[w]
			}
		}
		end := start + weight(g.Kind)
		for _, w := range g.Wires() {
			avail[w] = end
		}
		if end > max {
			max = end
		}
	}
	return max
}

// String renders the circuit as one gate per line in a .rc text form:
// "x t", "cx a t", "ccx a b t".
func (c *Circuit) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "wires %d\n", c.n)
	for _, g := range c.gates {
		b.WriteString(g.String())
		b.WriteByte('\n')
	}
	return b.String()
}
