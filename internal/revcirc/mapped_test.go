package revcirc

import (
	"math/rand/v2"
	"testing"
)

// TestAppendMappedSemantics: a sub-circuit embedded on a wire subset
// must act exactly like the original acting on those wires.
func TestAppendMappedSemantics(t *testing.T) {
	sub := New(3)
	sub.X(0).CNOT(0, 1).Toffoli(0, 1, 2)

	big := New(6)
	mapping := []int{4, 1, 5} // sub wire 0->4, 1->1, 2->5
	big.AppendMapped(sub, mapping)

	r := rand.New(rand.NewPCG(3, 9))
	for trial := 0; trial < 100; trial++ {
		in := r.Uint64() & 0x3f
		// Compute expected by extracting the mapped wires, running the
		// sub-circuit, and re-inserting.
		var subIn uint64
		for si, bw := range mapping {
			subIn |= (in >> uint(bw) & 1) << uint(si)
		}
		subOut := sub.RunUint(subIn)
		want := in
		for si, bw := range mapping {
			want &^= 1 << uint(bw)
			want |= (subOut >> uint(si) & 1) << uint(bw)
		}
		if got := big.RunUint(in); got != want {
			t.Fatalf("trial %d: got %06b, want %06b", trial, got, want)
		}
	}
}

// TestAppendMappedIdentityMapping: the identity mapping reproduces
// Append.
func TestAppendMappedIdentityMapping(t *testing.T) {
	sub := New(4)
	sub.Toffoli(0, 1, 2).CNOT(2, 3).X(0)
	a := New(4).Append(sub)
	b := New(4).AppendMapped(sub, []int{0, 1, 2, 3})
	for in := uint64(0); in < 16; in++ {
		if a.RunUint(in) != b.RunUint(in) {
			t.Fatalf("identity mapping diverges at %04b", in)
		}
	}
}

func TestAppendMappedPanics(t *testing.T) {
	sub := New(2)
	sub.CNOT(0, 1)
	cases := []func(){
		func() { New(4).AppendMapped(sub, []int{0}) },       // short mapping
		func() { New(4).AppendMapped(sub, []int{0, 0}) },    // duplicate
		func() { New(4).AppendMapped(sub, []int{0, 7}) },    // out of range
		func() { New(4).AppendMapped(sub, []int{0, 1, 2}) }, // long mapping
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}
