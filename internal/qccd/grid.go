// Package qccd is a discrete-event simulator of the QCCD ion-trap
// substrate the QLA is built on (Kielpinski–Monroe–Wineland, Figures
// 2–4 of the paper): a 2-D grid of 20 µm cells holding trapped ions
// that are ballistically shuttled from trap to trap through channel
// cells, splitting from chains, turning corners at junctions, heating
// as they move and sympathetically recooling next to coolant ions.
//
// Where internal/layout provides the closed-form geometry (block and
// chip dimensions, analytic move budgets), qccd executes shuttle
// schedules operation by operation: every move claims space-time
// reservations on the cells it traverses, conflicting moves stall, and
// every physical operation advances per-ion clocks by the Table-1
// latencies. The simulator validates the paper's design rules — gates
// need at most two turns under ballistic routing, movement stays local
// within a block — against an executable model rather than arithmetic.
package qccd

import (
	"fmt"
	"strings"

	"qla/internal/tilegrid"
)

// CellKind classifies one 20 µm cell of the substrate.
type CellKind uint8

const (
	// Wall is an electrode or substrate cell ions cannot enter.
	Wall CellKind = iota
	// Trap is a cell that can hold a resting ion (trapping region).
	Trap
	// Channel is a ballistic transport cell ions traverse but do not
	// rest in.
	Channel
)

// String returns the single-character map legend for the cell kind.
func (k CellKind) String() string {
	switch k {
	case Wall:
		return "#"
	case Trap:
		return "T"
	case Channel:
		return "."
	default:
		return "?"
	}
}

// Grid is the static cell map of a QCCD substrate region.
type Grid struct {
	w, h  int
	cells []CellKind
}

// NewGrid returns a w×h grid of Wall cells.
func NewGrid(w, h int) *Grid {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("qccd: non-positive grid %dx%d", w, h))
	}
	return &Grid{w: w, h: h, cells: make([]CellKind, w*h)}
}

// W returns the grid width in cells.
func (g *Grid) W() int { return g.w }

// H returns the grid height in cells.
func (g *Grid) H() int { return g.h }

// InBounds reports whether (x,y) lies on the grid.
func (g *Grid) InBounds(x, y int) bool {
	return x >= 0 && x < g.w && y >= 0 && y < g.h
}

// At returns the kind of cell (x,y).
func (g *Grid) At(x, y int) CellKind {
	if !g.InBounds(x, y) {
		panic(fmt.Sprintf("qccd: cell (%d,%d) outside %dx%d grid", x, y, g.w, g.h))
	}
	return g.cells[y*g.w+x]
}

// Set assigns the kind of cell (x,y).
func (g *Grid) Set(x, y int, k CellKind) {
	if !g.InBounds(x, y) {
		panic(fmt.Sprintf("qccd: cell (%d,%d) outside %dx%d grid", x, y, g.w, g.h))
	}
	g.cells[y*g.w+x] = k
}

// Passable reports whether an ion may occupy or traverse the cell.
func (g *Grid) Passable(x, y int) bool {
	return g.InBounds(x, y) && g.At(x, y) != Wall
}

// String renders the grid as an ASCII map, row 0 first.
func (g *Grid) String() string {
	var sb strings.Builder
	for y := 0; y < g.h; y++ {
		for x := 0; x < g.w; x++ {
			sb.WriteString(g.At(x, y).String())
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Parse reads the ASCII map format produced by String: '#' wall,
// 'T' trap, '.' channel. All rows must have equal width.
func Parse(s string) (*Grid, error) {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) == 0 || lines[0] == "" {
		return nil, fmt.Errorf("qccd: empty grid")
	}
	w := len(lines[0])
	g := NewGrid(w, len(lines))
	for y, line := range lines {
		if len(line) != w {
			return nil, fmt.Errorf("qccd: row %d has width %d, want %d", y, len(line), w)
		}
		for x, ch := range line {
			switch ch {
			case '#':
				g.Set(x, y, Wall)
			case 'T':
				g.Set(x, y, Trap)
			case '.':
				g.Set(x, y, Channel)
			default:
				return nil, fmt.Errorf("qccd: unknown cell %q at (%d,%d)", ch, x, y)
			}
		}
	}
	return g, nil
}

// Pos is a cell coordinate — the shared tilegrid coordinate type, so
// qccd cell positions, netsim island nodes and cyclesim tiles agree on
// geometry (Adjacent, Manhattan) and wire format.
type Pos = tilegrid.Coord

// TrapRowGrid builds the canonical single-block test geometry: a row of
// nTraps trap cells at y=1 separated by channel cells, with full
// channel rows above and below so ions can route around each other —
// the "investment in communication channels for ballistic ion movement
// around the physical qubits" of Section 3.
//
// Layout (nTraps=3):
//
//	#.......#
//	#.T.T.T.#
//	#.......#
//
// plus a wall border.
func TrapRowGrid(nTraps int) *Grid {
	if nTraps <= 0 {
		panic("qccd: non-positive trap count")
	}
	w := 2*nTraps + 3
	g := NewGrid(w, 5)
	for x := 1; x < w-1; x++ {
		g.Set(x, 1, Channel)
		g.Set(x, 3, Channel)
	}
	for x := 1; x < w-1; x++ {
		g.Set(x, 2, Channel)
	}
	for i := 0; i < nTraps; i++ {
		g.Set(2+2*i, 2, Trap)
	}
	return g
}

// TrapPositions returns the trap cells of a grid in row-major order.
func (g *Grid) TrapPositions() []Pos {
	var out []Pos
	for y := 0; y < g.h; y++ {
		for x := 0; x < g.w; x++ {
			if g.At(x, y) == Trap {
				out = append(out, Pos{X: x, Y: y})
			}
		}
	}
	return out
}

// TwoBlockGrid builds two trap rows (blocks A and B) of nTraps traps
// each, joined by a straight ballistic channel of the given length —
// the geometry for inter-block transversal gates whose analytic budget
// is layout.InterBlockGateMove. Block A occupies the left trap row,
// block B the right; the blocks' trap rows sit on distinct y so every
// inter-block route turns at least two corners, matching the paper's
// "no single gate will require more than two turns" design rule.
func TwoBlockGrid(nTraps, channelCells int) *Grid {
	if nTraps <= 0 || channelCells < 0 {
		panic("qccd: bad two-block geometry")
	}
	blockW := 2*nTraps + 1
	w := 2*blockW + channelCells + 2
	g := NewGrid(w, 7)
	// Block A trap row at y=2, block B trap row at y=4.
	for x := 1; x <= blockW; x++ {
		g.Set(x, 1, Channel)
		g.Set(x, 2, Channel)
		g.Set(x, 3, Channel)
	}
	for i := 0; i < nTraps; i++ {
		g.Set(2+2*i, 2, Trap)
	}
	bx := blockW + channelCells + 1
	for x := bx; x < bx+blockW && x < w-1; x++ {
		g.Set(x, 3, Channel)
		g.Set(x, 4, Channel)
		g.Set(x, 5, Channel)
	}
	for i := 0; i < nTraps; i++ {
		g.Set(bx+1+2*i, 4, Trap)
	}
	// Connecting channel at y=3.
	for x := 1; x < w-1; x++ {
		if g.At(x, 3) == Wall {
			g.Set(x, 3, Channel)
		}
	}
	return g
}
