package qccd

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"sort"

	"qla/internal/iontrap"
)

// IonKind distinguishes data ions from sympathetic-cooling ions.
type IonKind uint8

const (
	// Data ions carry quantum state.
	Data IonKind = iota
	// Cooling ions absorb vibrational energy and are never measured.
	Cooling
)

// Ion is one trapped ion on the grid.
type Ion struct {
	ID   int
	Kind IonKind
	// Pos is the ion's current cell.
	Pos Pos
	// Heat is the accumulated motional heating since the last
	// sympathetic recooling, in model units (cells moved).
	Heat float64
}

// Stats aggregates simulator activity.
type Stats struct {
	// Moves is the number of completed shuttles.
	Moves int
	// Cells is the total number of cells traversed.
	Cells int
	// Corners is the total number of direction changes charged.
	Corners int
	// Stalls counts shuttles delayed by a reservation conflict.
	Stalls int
	// StallSeconds is the total time lost to conflicts.
	StallSeconds float64
	// Gates1, Gates2, Measures, Cools count physical operations.
	Gates1, Gates2, Measures, Cools int
}

// Errors returned by simulator operations.
var (
	// ErrBlocked reports that no route exists between the endpoints.
	ErrBlocked = errors.New("qccd: no route between endpoints")
	// ErrOccupied reports a destination already holding an ion.
	ErrOccupied = errors.New("qccd: destination cell occupied")
	// ErrTooHot reports a gate attempted on an ion above the heating
	// threshold; it must be sympathetically recooled first.
	ErrTooHot = errors.New("qccd: ion too hot for a gate")
	// ErrNotAdjacent reports a two-ion operation on non-neighbouring
	// ions.
	ErrNotAdjacent = errors.New("qccd: ions not adjacent")
	// ErrCongested reports that a shuttle could not be scheduled within
	// the retry budget.
	ErrCongested = errors.New("qccd: channel congested beyond retry budget")
)

// HeatModel sets the motional-heating calibration. The paper notes
// corner turning "adds additional motional heating" and prices a turn
// at a 10 µs split; it does not publish heating magnitudes, so these
// are calibration knobs (see DESIGN.md §6): heating accrues per cell
// moved and per corner turned, and a gate requires heat ≤ MaxGateHeat.
type HeatModel struct {
	PerCell, PerCorner, MaxGateHeat float64
}

// DefaultHeatModel allows roughly one block-length shuttle (12 cells,
// 2 corners per the design rule) between recoolings.
func DefaultHeatModel() HeatModel {
	return HeatModel{PerCell: 1, PerCorner: 5, MaxGateHeat: 25}
}

type interval struct {
	start, end float64
	ion        int
}

// Sim is a discrete-event QCCD simulator: each ion has its own clock,
// shuttles claim space-time reservations on every cell they traverse,
// conflicting shuttles stall until the channel clears, and all
// latencies come from the Table-1 technology parameters.
type Sim struct {
	grid *Grid
	p    iontrap.Params
	heat HeatModel

	ions []*Ion
	// occ maps cells to parked ion IDs.
	occ map[Pos]int
	// busy is the per-ion clock: the time the ion is next free.
	busy []float64
	// res holds transit reservations per cell, kept sorted by start.
	res map[Pos][]interval

	stats Stats
}

// NewSim builds a simulator over the grid with Table-1 parameters.
func NewSim(g *Grid, p iontrap.Params) *Sim {
	return &Sim{
		grid: g,
		p:    p,
		heat: DefaultHeatModel(),
		occ:  make(map[Pos]int),
		res:  make(map[Pos][]interval),
	}
}

// SetHeatModel overrides the heating calibration.
func (s *Sim) SetHeatModel(h HeatModel) { s.heat = h }

// Grid returns the simulator's cell map.
func (s *Sim) Grid() *Grid { return s.grid }

// Stats returns a copy of the activity counters.
func (s *Sim) Stats() Stats { return s.stats }

// AddIon places a new ion on a passable, unoccupied cell.
func (s *Sim) AddIon(k IonKind, at Pos) (int, error) {
	if !s.grid.Passable(at.X, at.Y) {
		return 0, fmt.Errorf("qccd: cell (%d,%d) not passable", at.X, at.Y)
	}
	if _, taken := s.occ[at]; taken {
		return 0, ErrOccupied
	}
	id := len(s.ions)
	s.ions = append(s.ions, &Ion{ID: id, Kind: k, Pos: at})
	s.busy = append(s.busy, 0)
	s.occ[at] = id
	return id, nil
}

// Ion returns a copy of the ion's state.
func (s *Sim) Ion(id int) Ion { return *s.ions[id] }

// Clock returns the time at which ion id is next free.
func (s *Sim) Clock(id int) float64 { return s.busy[id] }

// Makespan returns the completion time of the latest operation.
func (s *Sim) Makespan() float64 {
	m := 0.0
	for _, b := range s.busy {
		if b > m {
			m = b
		}
	}
	return m
}

// Barrier aligns every ion clock to the makespan (a global sync point
// between algorithm phases) and returns it.
func (s *Sim) Barrier() float64 {
	m := s.Makespan()
	for i := range s.busy {
		s.busy[i] = m
	}
	return m
}

// --- routing ------------------------------------------------------------

var dirs = []Pos{{X: 1, Y: 0}, {X: -1, Y: 0}, {X: 0, Y: 1}, {X: 0, Y: -1}}

type routeNode struct {
	pos  Pos
	dir  int // index into dirs, -1 at the source
	cost float64
	path int // heap bookkeeping
}

type routeHeap []*routeNode

func (h routeHeap) Len() int            { return len(h) }
func (h routeHeap) Less(i, j int) bool  { return h[i].cost < h[j].cost }
func (h routeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *routeHeap) Push(x interface{}) { *h = append(*h, x.(*routeNode)) }
func (h *routeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Route finds a minimum-time path from `from` to `to` avoiding cells
// parked on by other ions (the moving ion's own cell is free). It
// returns the path including both endpoints and the number of corner
// turns. Cost per step is the per-cell move time plus the corner
// penalty on direction changes (Dijkstra over position×heading).
func (s *Sim) Route(from, to Pos, mover int) ([]Pos, int, error) {
	if !s.grid.Passable(from.X, from.Y) || !s.grid.Passable(to.X, to.Y) {
		return nil, 0, ErrBlocked
	}
	if from == to {
		return []Pos{from}, 0, nil
	}
	tMove := s.p.Time[iontrap.OpMoveCell]
	tCorner := s.p.Time[iontrap.OpCorner]

	type key struct {
		pos Pos
		dir int
	}
	dist := map[key]float64{}
	prev := map[key]key{}
	h := &routeHeap{{pos: from, dir: -1}}
	dist[key{from, -1}] = 0
	var goal key
	found := false
	for h.Len() > 0 {
		cur := heap.Pop(h).(*routeNode)
		k := key{cur.pos, cur.dir}
		if d, ok := dist[k]; ok && cur.cost > d {
			continue
		}
		if cur.pos == to {
			goal, found = k, true
			break
		}
		for di, d := range dirs {
			np := Pos{X: cur.pos.X + d.X, Y: cur.pos.Y + d.Y}
			if !s.grid.Passable(np.X, np.Y) {
				continue
			}
			if owner, parked := s.occ[np]; parked && owner != mover && np != to {
				continue
			}
			cost := cur.cost + tMove
			if cur.dir >= 0 && cur.dir != di {
				cost += tCorner
			}
			nk := key{np, di}
			if old, ok := dist[nk]; !ok || cost < old {
				dist[nk] = cost
				prev[nk] = k
				heap.Push(h, &routeNode{pos: np, dir: di, cost: cost})
			}
		}
	}
	if !found {
		return nil, 0, ErrBlocked
	}
	if owner, parked := s.occ[to]; parked && owner != mover {
		return nil, 0, ErrOccupied
	}
	var path []Pos
	corners := 0
	for k := goal; ; k = prev[k] {
		path = append(path, k.pos)
		p, ok := prev[k]
		if !ok {
			break
		}
		if p.dir >= 0 && p.dir != k.dir {
			corners++
		}
	}
	// Reverse into source-first order.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, corners, nil
}

// --- shuttling ------------------------------------------------------------

const maxScheduleRetries = 512

// ShuttleResult reports one completed shuttle.
type ShuttleResult struct {
	// End is the completion time in seconds.
	End float64
	// Cells is the number of cells traversed.
	Cells int
	// Corners is the number of direction changes charged.
	Corners int
	// Stalled reports whether a reservation conflict delayed the start.
	Stalled bool
}

// Shuttle moves an ion along a minimum-time route to the destination,
// claiming space-time reservations for every traversed cell. If the
// route conflicts with a previously scheduled transit, the start is
// delayed until the conflicting reservation clears (counted as a
// stall).
func (s *Sim) Shuttle(id int, to Pos) (ShuttleResult, error) {
	ion := s.ions[id]
	if ion.Pos == to {
		return ShuttleResult{End: s.busy[id]}, nil
	}
	path, corners, err := s.Route(ion.Pos, to, id)
	if err != nil {
		return ShuttleResult{}, err
	}
	tMove := s.p.Time[iontrap.OpMoveCell]
	tCorner := s.p.Time[iontrap.OpCorner]
	tSplit := s.p.Time[iontrap.OpSplit]

	start := s.busy[id]
	stalled := false
	for attempt := 0; ; attempt++ {
		if attempt >= maxScheduleRetries {
			return ShuttleResult{}, ErrCongested
		}
		conflict, again := s.tryReserve(id, path, start, tSplit, tMove, tCorner)
		if !again {
			break
		}
		if conflict > start {
			if !stalled {
				s.stats.Stalls++
				stalled = true
			}
			s.stats.StallSeconds += conflict - start
			start = conflict
		} else {
			start += tMove // defensive nudge; conflicts always advance
		}
	}

	elapsed := tSplit + float64(len(path)-1)*tMove + float64(corners)*tCorner
	end := start + elapsed
	delete(s.occ, ion.Pos)
	ion.Pos = to
	s.occ[to] = id
	ion.Heat += float64(len(path)-1)*s.heat.PerCell + float64(corners)*s.heat.PerCorner
	s.busy[id] = end
	s.stats.Moves++
	s.stats.Cells += len(path) - 1
	s.stats.Corners += corners
	return ShuttleResult{End: end, Cells: len(path) - 1, Corners: corners, Stalled: stalled}, nil
}

// tryReserve attempts to claim the path starting at time start. On a
// conflict it returns the earliest time the blocking reservation clears
// and again=true; on success it records the reservations.
func (s *Sim) tryReserve(id int, path []Pos, start, tSplit, tMove, tCorner float64) (conflictEnd float64, again bool) {
	// Timeline: the split occupies the source cell, then each step
	// enters the next cell. Corner dwell is charged in the cell where
	// the direction changes. We approximate per-cell occupancy as
	// [enter, enter+step] with corner dwell extending the stay.
	type claim struct {
		cell       Pos
		from, till float64
	}
	claims := make([]claim, 0, len(path)+1)
	t := start
	claims = append(claims, claim{path[0], t, t + tSplit})
	t += tSplit
	prevDir := Pos{}
	first := true
	for i := 1; i < len(path); i++ {
		d := Pos{X: path[i].X - path[i-1].X, Y: path[i].Y - path[i-1].Y}
		dwell := tMove
		if !first && d != prevDir {
			dwell += tCorner
		}
		claims = append(claims, claim{path[i], t, t + dwell})
		t += dwell
		prevDir = d
		first = false
	}
	for _, cl := range claims {
		for _, iv := range s.res[cl.cell] {
			if iv.ion == id {
				continue
			}
			if cl.from < iv.end && iv.start < cl.till {
				return iv.end, true
			}
		}
	}
	for _, cl := range claims {
		ivs := append(s.res[cl.cell], interval{cl.from, cl.till, id})
		sort.Slice(ivs, func(i, j int) bool { return ivs[i].start < ivs[j].start })
		s.res[cl.cell] = ivs
	}
	return 0, false
}

// --- physical operations ---------------------------------------------------

// Gate1 applies a single-qubit gate to an ion. The ion must be below
// the heating threshold.
func (s *Sim) Gate1(id int) (float64, error) {
	ion := s.ions[id]
	if ion.Heat > s.heat.MaxGateHeat {
		return 0, ErrTooHot
	}
	s.busy[id] += s.p.Time[iontrap.OpSingle]
	s.stats.Gates1++
	return s.busy[id], nil
}

// Gate2 applies a two-qubit gate between adjacent ions (a linear chain
// across neighbouring cells). Both must be cool enough; the gate starts
// when both are free.
func (s *Sim) Gate2(a, b int) (float64, error) {
	ia, ib := s.ions[a], s.ions[b]
	if !ia.Pos.Adjacent(ib.Pos) {
		return 0, ErrNotAdjacent
	}
	if ia.Heat > s.heat.MaxGateHeat || ib.Heat > s.heat.MaxGateHeat {
		return 0, ErrTooHot
	}
	start := math.Max(s.busy[a], s.busy[b])
	end := start + s.p.Time[iontrap.OpDouble]
	s.busy[a], s.busy[b] = end, end
	s.stats.Gates2++
	return end, nil
}

// Measure reads an ion out by resonance fluorescence.
func (s *Sim) Measure(id int) (float64, error) {
	if s.ions[id].Kind != Data {
		return 0, fmt.Errorf("qccd: measuring a cooling ion")
	}
	s.busy[id] += s.p.Time[iontrap.OpMeasure]
	s.stats.Measures++
	return s.busy[id], nil
}

// Cool sympathetically recools a data ion against an adjacent cooling
// ion, resetting its accumulated heat.
func (s *Sim) Cool(id, coolerID int) (float64, error) {
	ion, cooler := s.ions[id], s.ions[coolerID]
	if cooler.Kind != Cooling {
		return 0, fmt.Errorf("qccd: ion %d is not a cooling ion", coolerID)
	}
	if !ion.Pos.Adjacent(cooler.Pos) {
		return 0, ErrNotAdjacent
	}
	start := math.Max(s.busy[id], s.busy[coolerID])
	end := start + s.p.Time[iontrap.OpCool]
	s.busy[id], s.busy[coolerID] = end, end
	ion.Heat = 0
	s.stats.Cools++
	return end, nil
}
