package qccd

import (
	"fmt"

	"qla/internal/iontrap"
)

// TransversalReport summarizes an executed transversal two-qubit gate
// between two blocks: all of block A's data ions shuttle to traps
// adjacent to block B's ions, the pairwise gates run, and the ions
// shuttle home.
type TransversalReport struct {
	// Ions is the number of ion pairs gated (7 for Steane blocks).
	Ions int
	// Makespan is the wall-clock completion time in seconds.
	Makespan float64
	// MaxCorners is the largest number of turns any single shuttle took.
	MaxCorners int
	// Stats is the simulator activity summary.
	Stats Stats
	// AnalyticSeconds is the closed-form estimate for one ion's round
	// trip plus the gate, per the layout package's move budget; the
	// executed makespan must be of the same order (routing detours and
	// congestion make it larger, pipelining makes the gap small).
	AnalyticSeconds float64
}

// InterBlockTransversalGate builds a two-block geometry with the given
// number of ions per block and channel separation, executes a full
// transversal gate, and reports the measured cost. Cooling ions are
// co-located one cell above each trap; every data ion is recooled
// after each leg of the trip, following the paper's sympathetic
// recooling protocol.
func InterBlockTransversalGate(ionsPerBlock, channelCells int, p iontrap.Params) (TransversalReport, error) {
	if ionsPerBlock <= 0 || channelCells < 0 {
		return TransversalReport{}, fmt.Errorf("qccd: bad experiment shape %d/%d", ionsPerBlock, channelCells)
	}
	g := TwoBlockGrid(ionsPerBlock, channelCells)
	s := NewSim(g, p)
	traps := g.TrapPositions()
	if len(traps) != 2*ionsPerBlock {
		return TransversalReport{}, fmt.Errorf("qccd: geometry yielded %d traps, want %d", len(traps), 2*ionsPerBlock)
	}
	blockA, blockB := traps[:ionsPerBlock], traps[ionsPerBlock:]

	idsA := make([]int, ionsPerBlock)
	idsB := make([]int, ionsPerBlock)
	coolers := make([]int, ionsPerBlock)
	for i := 0; i < ionsPerBlock; i++ {
		var err error
		if idsA[i], err = s.AddIon(Data, blockA[i]); err != nil {
			return TransversalReport{}, err
		}
		if idsB[i], err = s.AddIon(Data, blockB[i]); err != nil {
			return TransversalReport{}, err
		}
		// One cooling ion per pair, parked below the cell the incoming
		// A ion will occupy, so recooling needs no extra movement.
		if coolers[i], err = s.AddIon(Cooling, Pos{X: blockB[i].X - 1, Y: blockB[i].Y + 1}); err != nil {
			return TransversalReport{}, err
		}
	}

	report := TransversalReport{Ions: ionsPerBlock}
	home := make([]Pos, ionsPerBlock)
	// Leg 1: every A ion shuttles to the cell left of its B partner.
	for i, id := range idsA {
		home[i] = s.Ion(id).Pos
		dst := Pos{X: blockB[i].X - 1, Y: blockB[i].Y}
		res, err := s.Shuttle(id, dst)
		if err != nil {
			return TransversalReport{}, fmt.Errorf("qccd: leg 1 ion %d: %w", i, err)
		}
		if res.Corners > report.MaxCorners {
			report.MaxCorners = res.Corners
		}
	}
	// Recool and gate.
	for i := range idsA {
		if _, err := s.Cool(idsA[i], coolers[i]); err != nil {
			return TransversalReport{}, fmt.Errorf("qccd: recool ion %d: %w", i, err)
		}
		if _, err := s.Gate2(idsA[i], idsB[i]); err != nil {
			return TransversalReport{}, fmt.Errorf("qccd: gate %d: %w", i, err)
		}
	}
	// Leg 2: shuttle home.
	for i, id := range idsA {
		res, err := s.Shuttle(id, home[i])
		if err != nil {
			return TransversalReport{}, fmt.Errorf("qccd: leg 2 ion %d: %w", i, err)
		}
		if res.Corners > report.MaxCorners {
			report.MaxCorners = res.Corners
		}
	}
	report.Makespan = s.Makespan()
	report.Stats = s.Stats()

	// Analytic budget: two split+move legs over the block separation
	// with the design-rule two corners each, a recooling and the gate.
	oneWay := p.MoveTime(channelCells+2*ionsPerBlock, 2)
	report.AnalyticSeconds = 2*oneWay + p.Time[iontrap.OpCool] + p.Time[iontrap.OpDouble]
	return report, nil
}

// RouteCorners returns the corner count of the current minimum-time
// route between two cells — used to check the paper's "at most two
// turns" ballistic design rule on explicit geometries.
func (s *Sim) RouteCorners(from, to Pos) (int, error) {
	_, corners, err := s.Route(from, to, -1)
	if err != nil {
		return 0, err
	}
	return corners, nil
}
