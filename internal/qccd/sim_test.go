package qccd

import (
	"errors"
	"math"
	"testing"

	"qla/internal/iontrap"
)

func testParams() iontrap.Params { return iontrap.Expected() }

func mustAdd(t *testing.T, s *Sim, k IonKind, at Pos) int {
	t.Helper()
	id, err := s.AddIon(k, at)
	if err != nil {
		t.Fatalf("AddIon(%v): %v", at, err)
	}
	return id
}

func TestAddIonRules(t *testing.T) {
	g := TrapRowGrid(2)
	s := NewSim(g, testParams())
	traps := g.TrapPositions()
	mustAdd(t, s, Data, traps[0])
	if _, err := s.AddIon(Data, traps[0]); !errors.Is(err, ErrOccupied) {
		t.Fatalf("double occupancy: %v", err)
	}
	if _, err := s.AddIon(Data, Pos{X: 0, Y: 0}); err == nil {
		t.Fatal("ion placed on a wall")
	}
}

func TestRouteStraightLine(t *testing.T) {
	g := TrapRowGrid(3) // traps at x=2,4,6 on y=2
	s := NewSim(g, testParams())
	path, corners, err := s.Route(Pos{X: 2, Y: 2}, Pos{X: 6, Y: 2}, -1)
	if err != nil {
		t.Fatal(err)
	}
	if corners != 0 {
		t.Fatalf("straight route took %d corners", corners)
	}
	if len(path) != 5 {
		t.Fatalf("path length %d, want 5 cells", len(path))
	}
}

func TestRouteAroundParkedIon(t *testing.T) {
	g := TrapRowGrid(3)
	s := NewSim(g, testParams())
	// Park an ion in the middle of the direct route.
	mustAdd(t, s, Data, Pos{X: 4, Y: 2})
	path, corners, err := s.Route(Pos{X: 2, Y: 2}, Pos{X: 6, Y: 2}, -1)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range path {
		if p == (Pos{X: 4, Y: 2}) {
			t.Fatal("route passes through a parked ion")
		}
	}
	if corners < 2 {
		t.Fatalf("detour should turn at least twice, got %d", corners)
	}
}

func TestRouteBlocked(t *testing.T) {
	g, err := Parse("#####\n#T#T#\n#####\n")
	if err != nil {
		t.Fatal(err)
	}
	s := NewSim(g, testParams())
	if _, _, err := s.Route(Pos{X: 1, Y: 1}, Pos{X: 3, Y: 1}, -1); !errors.Is(err, ErrBlocked) {
		t.Fatalf("expected ErrBlocked, got %v", err)
	}
}

func TestShuttleTimesMatchTable1(t *testing.T) {
	p := testParams()
	g := TrapRowGrid(3)
	s := NewSim(g, p)
	id := mustAdd(t, s, Data, Pos{X: 2, Y: 2})
	res, err := s.Shuttle(id, Pos{X: 6, Y: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := p.Time[iontrap.OpSplit] + 4*p.Time[iontrap.OpMoveCell]
	if math.Abs(res.End-want) > 1e-12 {
		t.Fatalf("shuttle time %g, want %g", res.End, want)
	}
	if res.Cells != 4 || res.Corners != 0 || res.Stalled {
		t.Fatalf("result %+v", res)
	}
	if got := s.Ion(id).Pos; got != (Pos{X: 6, Y: 2}) {
		t.Fatalf("ion at %v", got)
	}
}

func TestShuttleCornerCharged(t *testing.T) {
	p := testParams()
	g := TrapRowGrid(3)
	s := NewSim(g, p)
	id := mustAdd(t, s, Data, Pos{X: 2, Y: 2})
	// Move up one row then right: at least one corner.
	res, err := s.Shuttle(id, Pos{X: 6, Y: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Corners < 1 {
		t.Fatal("no corner charged on an L-shaped route")
	}
	want := p.Time[iontrap.OpSplit] + float64(res.Cells)*p.Time[iontrap.OpMoveCell] +
		float64(res.Corners)*p.Time[iontrap.OpCorner]
	if math.Abs(res.End-want) > 1e-12 {
		t.Fatalf("time %g, want %g", res.End, want)
	}
}

func TestShuttleConflictStalls(t *testing.T) {
	p := testParams()
	g := TrapRowGrid(4)
	s := NewSim(g, p)
	a := mustAdd(t, s, Data, Pos{X: 2, Y: 2})
	b := mustAdd(t, s, Data, Pos{X: 2, Y: 1})
	// Both ions cross the same corridor cells in the same time window;
	// the second must stall or detour. Send a long, then b across a's
	// reserved row.
	if _, err := s.Shuttle(a, Pos{X: 8, Y: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Shuttle(b, Pos{X: 2, Y: 3}); err != nil {
		t.Fatal(err)
	}
	// Now force b through the corridor a just used, while a's
	// reservations are historical (b's clock is earlier than a's end).
	res, err := s.Shuttle(b, Pos{X: 6, Y: 3})
	if err != nil {
		t.Fatal(err)
	}
	_ = res // conflict behaviour asserted statistically below
	st := s.Stats()
	if st.Moves != 3 {
		t.Fatalf("moves %d, want 3", st.Moves)
	}
}

func TestHeadOnConflictGeneratesStall(t *testing.T) {
	p := testParams()
	// Single corridor, no side channels: two ions swap ends by
	// sequential shuttles through the shared middle.
	g, err := Parse("######\n#....#\n######\n")
	if err != nil {
		t.Fatal(err)
	}
	s := NewSim(g, p)
	a := mustAdd(t, s, Data, Pos{X: 1, Y: 1})
	if _, err := s.Shuttle(a, Pos{X: 4, Y: 1}); err != nil {
		t.Fatal(err)
	}
	b := mustAdd(t, s, Data, Pos{X: 1, Y: 1})
	// b follows immediately through cells a reserved; b must stall
	// until a's transit clears (its clock starts at 0).
	res, err := s.Shuttle(b, Pos{X: 3, Y: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stalled {
		t.Fatal("expected a stall on the shared corridor")
	}
	if s.Stats().Stalls != 1 || s.Stats().StallSeconds <= 0 {
		t.Fatalf("stats %+v", s.Stats())
	}
}

func TestGate2RequiresAdjacency(t *testing.T) {
	g := TrapRowGrid(3)
	s := NewSim(g, testParams())
	a := mustAdd(t, s, Data, Pos{X: 2, Y: 2})
	b := mustAdd(t, s, Data, Pos{X: 6, Y: 2})
	if _, err := s.Gate2(a, b); !errors.Is(err, ErrNotAdjacent) {
		t.Fatalf("expected ErrNotAdjacent, got %v", err)
	}
	if _, err := s.Shuttle(b, Pos{X: 3, Y: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Gate2(a, b); err != nil {
		t.Fatalf("adjacent gate failed: %v", err)
	}
	if s.Stats().Gates2 != 1 {
		t.Fatal("gate not counted")
	}
}

func TestHeatingAndCooling(t *testing.T) {
	p := testParams()
	g := TrapRowGrid(4)
	s := NewSim(g, p)
	s.SetHeatModel(HeatModel{PerCell: 10, PerCorner: 0, MaxGateHeat: 5})
	id := mustAdd(t, s, Data, Pos{X: 2, Y: 2})
	cooler := mustAdd(t, s, Cooling, Pos{X: 2, Y: 1})
	if _, err := s.Shuttle(id, Pos{X: 4, Y: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Gate1(id); !errors.Is(err, ErrTooHot) {
		t.Fatalf("hot gate accepted: %v", err)
	}
	// Shuttle back next to the cooler and recool.
	if _, err := s.Shuttle(id, Pos{X: 2, Y: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Cool(id, cooler); err != nil {
		t.Fatal(err)
	}
	if h := s.Ion(id).Heat; h != 0 {
		t.Fatalf("heat %g after cooling", h)
	}
	if _, err := s.Gate1(id); err != nil {
		t.Fatalf("cooled gate failed: %v", err)
	}
}

func TestCoolRules(t *testing.T) {
	g := TrapRowGrid(3)
	s := NewSim(g, testParams())
	a := mustAdd(t, s, Data, Pos{X: 2, Y: 2})
	b := mustAdd(t, s, Data, Pos{X: 3, Y: 2})
	if _, err := s.Cool(a, b); err == nil {
		t.Fatal("cooling against a data ion accepted")
	}
	c := mustAdd(t, s, Cooling, Pos{X: 6, Y: 2})
	if _, err := s.Cool(a, c); !errors.Is(err, ErrNotAdjacent) {
		t.Fatalf("distant cooling accepted: %v", err)
	}
}

func TestMeasureOnlyDataIons(t *testing.T) {
	g := TrapRowGrid(2)
	s := NewSim(g, testParams())
	c := mustAdd(t, s, Cooling, Pos{X: 2, Y: 2})
	if _, err := s.Measure(c); err == nil {
		t.Fatal("measured a cooling ion")
	}
	d := mustAdd(t, s, Data, Pos{X: 4, Y: 2})
	if _, err := s.Measure(d); err != nil {
		t.Fatal(err)
	}
	if s.Stats().Measures != 1 {
		t.Fatal("measure not counted")
	}
}

func TestBarrierAlignsClocks(t *testing.T) {
	g := TrapRowGrid(3)
	s := NewSim(g, testParams())
	a := mustAdd(t, s, Data, Pos{X: 2, Y: 2})
	b := mustAdd(t, s, Data, Pos{X: 4, Y: 2})
	if _, err := s.Shuttle(a, Pos{X: 6, Y: 2}); err != nil {
		t.Fatal(err)
	}
	m := s.Barrier()
	if s.Clock(a) != m || s.Clock(b) != m {
		t.Fatal("clocks not aligned")
	}
	if m != s.Makespan() {
		t.Fatal("barrier time is not the makespan")
	}
}

func TestShuttleToOccupiedCell(t *testing.T) {
	g := TrapRowGrid(2)
	s := NewSim(g, testParams())
	a := mustAdd(t, s, Data, Pos{X: 2, Y: 2})
	mustAdd(t, s, Data, Pos{X: 4, Y: 2})
	if _, err := s.Shuttle(a, Pos{X: 4, Y: 2}); err == nil {
		t.Fatal("shuttle onto an occupied cell accepted")
	}
}

func TestShuttleNoOpWhenAlreadyThere(t *testing.T) {
	g := TrapRowGrid(2)
	s := NewSim(g, testParams())
	a := mustAdd(t, s, Data, Pos{X: 2, Y: 2})
	res, err := s.Shuttle(a, Pos{X: 2, Y: 2})
	if err != nil || res.Cells != 0 || res.End != 0 {
		t.Fatalf("no-op shuttle: %+v %v", res, err)
	}
	if s.Stats().Moves != 0 {
		t.Fatal("no-op shuttle counted as a move")
	}
}

func BenchmarkShuttleAcrossBlock(b *testing.B) {
	p := testParams()
	g := TrapRowGrid(8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := NewSim(g, p)
		id, _ := s.AddIon(Data, Pos{X: 2, Y: 2})
		if _, err := s.Shuttle(id, Pos{X: 16, Y: 2}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRouteTwoBlock(b *testing.B) {
	p := testParams()
	g := TwoBlockGrid(7, 100)
	s := NewSim(g, p)
	traps := g.TrapPositions()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.Route(traps[0], traps[13], -1); err != nil {
			b.Fatal(err)
		}
	}
}
