package qccd

import (
	"testing"

	"qla/internal/iontrap"
)

// TestInterBlockTransversalGate runs the full 7-ion transversal gate
// between two blocks and checks the design rules the paper states:
// completion, bounded turning, and a makespan within a small factor of
// the analytic budget.
func TestInterBlockTransversalGate(t *testing.T) {
	p := iontrap.Expected()
	rep, err := InterBlockTransversalGate(7, 12, p)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ions != 7 {
		t.Fatalf("ions %d", rep.Ions)
	}
	if rep.Stats.Gates2 != 7 || rep.Stats.Cools != 7 {
		t.Fatalf("stats %+v", rep.Stats)
	}
	if rep.Stats.Moves != 14 {
		t.Fatalf("moves %d, want 14 (7 out, 7 back)", rep.Stats.Moves)
	}
	if rep.Makespan <= 0 {
		t.Fatal("zero makespan")
	}
	// The executed schedule routes around parked ions, so it exceeds
	// the straight-line analytic budget, but with pipelined shuttles it
	// must stay within a small factor.
	if rep.Makespan > 12*rep.AnalyticSeconds {
		t.Fatalf("makespan %.3gs exceeds 12x analytic %.3gs", rep.Makespan, rep.AnalyticSeconds)
	}
	if rep.Makespan < rep.AnalyticSeconds/2 {
		t.Fatalf("makespan %.3gs implausibly below analytic %.3gs", rep.Makespan, rep.AnalyticSeconds)
	}
}

// TestTwoTurnDesignRule: on the two-block geometry, the minimum-time
// route between any A-trap and its B partner's neighbour turns at most
// twice when the channels are clear — the paper's ballistic design rule.
func TestTwoTurnDesignRule(t *testing.T) {
	g := TwoBlockGrid(7, 24)
	s := NewSim(g, iontrap.Expected())
	traps := g.TrapPositions()
	for i := 0; i < 7; i++ {
		from := traps[i]
		to := Pos{X: traps[7+i].X - 1, Y: traps[7+i].Y}
		corners, err := s.RouteCorners(from, to)
		if err != nil {
			t.Fatalf("pair %d: %v", i, err)
		}
		if corners > 2 {
			t.Fatalf("pair %d: %d corners, design rule allows at most 2", i, corners)
		}
	}
}

// TestTransversalGateScalesWithSeparation: doubling the channel length
// increases the makespan but stays in the movement-dominated regime the
// paper describes (split time dominates short hops; cells dominate long
// ones).
func TestTransversalGateScalesWithSeparation(t *testing.T) {
	p := iontrap.Expected()
	short, err := InterBlockTransversalGate(3, 10, p)
	if err != nil {
		t.Fatal(err)
	}
	long, err := InterBlockTransversalGate(3, 400, p)
	if err != nil {
		t.Fatal(err)
	}
	if long.Makespan <= short.Makespan {
		t.Fatalf("long separation %.3g not slower than short %.3g", long.Makespan, short.Makespan)
	}
}

// TestTransversalGateCurrentVsExpected: current-generation parameters
// share Table-1 latencies, so the makespan is identical; the point of
// Pexpected is reliability, not speed. This pins that both parameter
// sets execute the same schedule.
func TestTransversalGateCurrentVsExpected(t *testing.T) {
	cur, err := InterBlockTransversalGate(3, 20, iontrap.Current())
	if err != nil {
		t.Fatal(err)
	}
	exp, err := InterBlockTransversalGate(3, 20, iontrap.Expected())
	if err != nil {
		t.Fatal(err)
	}
	if cur.Makespan != exp.Makespan {
		t.Fatalf("makespans differ: %g vs %g", cur.Makespan, exp.Makespan)
	}
}

func TestInterBlockTransversalGateValidation(t *testing.T) {
	if _, err := InterBlockTransversalGate(0, 5, iontrap.Expected()); err == nil {
		t.Fatal("accepted zero ions")
	}
	if _, err := InterBlockTransversalGate(3, -1, iontrap.Expected()); err == nil {
		t.Fatal("accepted negative separation")
	}
}

func BenchmarkInterBlockTransversalGate(b *testing.B) {
	p := iontrap.Expected()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := InterBlockTransversalGate(7, 100, p); err != nil {
			b.Fatal(err)
		}
	}
}
