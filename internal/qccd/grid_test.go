package qccd

import (
	"strings"
	"testing"
)

func TestGridBasics(t *testing.T) {
	g := NewGrid(4, 3)
	if g.W() != 4 || g.H() != 3 {
		t.Fatalf("dims %dx%d", g.W(), g.H())
	}
	if g.At(0, 0) != Wall {
		t.Fatal("new grid should be walls")
	}
	g.Set(1, 1, Trap)
	g.Set(2, 1, Channel)
	if g.At(1, 1) != Trap || g.At(2, 1) != Channel {
		t.Fatal("Set/At mismatch")
	}
	if g.Passable(0, 0) || !g.Passable(1, 1) || !g.Passable(2, 1) {
		t.Fatal("Passable wrong")
	}
	if g.Passable(-1, 0) || g.Passable(4, 0) {
		t.Fatal("out-of-bounds should not be passable")
	}
}

func TestParseRoundTrip(t *testing.T) {
	src := "#####\n#T.T#\n#...#\n#####\n"
	g, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if g.String() != src {
		t.Fatalf("round trip:\n%s\nvs\n%s", g.String(), src)
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse(""); err == nil {
		t.Fatal("empty grid accepted")
	}
	if _, err := Parse("##\n###\n"); err == nil {
		t.Fatal("ragged rows accepted")
	}
	if _, err := Parse("#x#\n"); err == nil {
		t.Fatal("unknown cell accepted")
	}
}

func TestTrapRowGrid(t *testing.T) {
	g := TrapRowGrid(7)
	traps := g.TrapPositions()
	if len(traps) != 7 {
		t.Fatalf("trap count %d, want 7", len(traps))
	}
	// Every trap must touch at least two channel cells so ions can
	// route past each other (the block's communication investment).
	for _, p := range traps {
		open := 0
		for _, d := range dirs {
			if g.Passable(p.X+d.X, p.Y+d.Y) {
				open++
			}
		}
		if open < 2 {
			t.Fatalf("trap %v has only %d open neighbours", p, open)
		}
	}
	// Border must be sealed.
	for x := 0; x < g.W(); x++ {
		if g.Passable(x, 0) || g.Passable(x, g.H()-1) {
			t.Fatal("border not sealed")
		}
	}
}

func TestTwoBlockGrid(t *testing.T) {
	g := TwoBlockGrid(7, 24)
	traps := g.TrapPositions()
	if len(traps) != 14 {
		t.Fatalf("trap count %d, want 14", len(traps))
	}
	if !strings.Contains(g.String(), "T") {
		t.Fatal("render lost traps")
	}
	// Blocks must be connected: route between first and last trap.
	s := NewSim(g, testParams())
	if _, _, err := s.Route(traps[0], traps[13], -1); err != nil {
		t.Fatalf("blocks disconnected: %v", err)
	}
}

func TestAdjacent(t *testing.T) {
	if !(Pos{X: 1, Y: 1}).Adjacent(Pos{X: 1, Y: 2}) || !(Pos{X: 1, Y: 1}).Adjacent(Pos{X: 0, Y: 1}) {
		t.Fatal("4-neighbours not adjacent")
	}
	if (Pos{X: 1, Y: 1}).Adjacent(Pos{X: 2, Y: 2}) || (Pos{X: 1, Y: 1}).Adjacent(Pos{X: 1, Y: 1}) {
		t.Fatal("diagonal or self adjacency")
	}
}

func TestGridPanics(t *testing.T) {
	cases := []func(){
		func() { NewGrid(0, 3) },
		func() { NewGrid(3, 0) },
		func() { NewGrid(2, 2).At(5, 0) },
		func() { NewGrid(2, 2).Set(0, 5, Trap) },
		func() { TrapRowGrid(0) },
		func() { TwoBlockGrid(0, 5) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}
