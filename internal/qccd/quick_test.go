package qccd

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"qla/internal/iontrap"
)

// Property: on an empty grid the minimum route cost is symmetric —
// reversing a path preserves cells and corners, so optimal costs match.
func TestQuickRouteCostSymmetric(t *testing.T) {
	p := iontrap.Expected()
	g := TwoBlockGrid(5, 30)
	s := NewSim(g, p)
	pass := g.TrapPositions()
	cost := func(path []Pos, corners int) float64 {
		return float64(len(path)-1)*p.Time[iontrap.OpMoveCell] +
			float64(corners)*p.Time[iontrap.OpCorner]
	}
	f := func(aRaw, bRaw uint8) bool {
		a := pass[int(aRaw)%len(pass)]
		b := pass[int(bRaw)%len(pass)]
		p1, c1, err1 := s.Route(a, b, -1)
		p2, c2, err2 := s.Route(b, a, -1)
		if err1 != nil || err2 != nil {
			return err1 == err2
		}
		return math.Abs(cost(p1, c1)-cost(p2, c2)) < 1e-15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: arbitrary shuttle sequences preserve the occupancy
// invariant — no two ions ever share a cell — and the statistics
// totals equal the sum of per-shuttle results.
func TestQuickOccupancyInvariant(t *testing.T) {
	p := iontrap.Expected()
	f := func(seed uint64, movesRaw uint8) bool {
		r := rand.New(rand.NewPCG(seed, seed^0xabcd))
		g := TrapRowGrid(5)
		s := NewSim(g, p)
		// Place ions on alternating traps.
		traps := g.TrapPositions()
		ids := make([]int, 0, 3)
		for i := 0; i < len(traps); i += 2 {
			id, err := s.AddIon(Data, traps[i])
			if err != nil {
				return false
			}
			ids = append(ids, id)
		}
		var passable []Pos
		for y := 0; y < g.H(); y++ {
			for x := 0; x < g.W(); x++ {
				if g.Passable(x, y) {
					passable = append(passable, Pos{X: x, Y: y})
				}
			}
		}
		moves := 1 + int(movesRaw)%25
		cells, corners := 0, 0
		for m := 0; m < moves; m++ {
			id := ids[r.IntN(len(ids))]
			dst := passable[r.IntN(len(passable))]
			res, err := s.Shuttle(id, dst)
			if err != nil {
				continue // blocked or occupied: legitimate refusals
			}
			cells += res.Cells
			corners += res.Corners
		}
		// Occupancy: every ion on a distinct passable cell.
		seen := map[Pos]bool{}
		for _, id := range ids {
			pos := s.Ion(id).Pos
			if seen[pos] || !g.Passable(pos.X, pos.Y) {
				return false
			}
			seen[pos] = true
		}
		st := s.Stats()
		return st.Cells == cells && st.Corners == corners
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: per-ion clocks never decrease, and the makespan equals the
// maximum clock after any operation sequence.
func TestQuickClocksMonotone(t *testing.T) {
	p := iontrap.Expected()
	f := func(seed uint64, opsRaw uint8) bool {
		r := rand.New(rand.NewPCG(seed, seed^0x7777))
		g := TrapRowGrid(4)
		s := NewSim(g, p)
		a, err := s.AddIon(Data, Pos{X: 2, Y: 2})
		if err != nil {
			return false
		}
		c, err := s.AddIon(Cooling, Pos{X: 2, Y: 1})
		if err != nil {
			return false
		}
		prev := 0.0
		ops := 1 + int(opsRaw)%30
		for i := 0; i < ops; i++ {
			switch r.IntN(4) {
			case 0:
				x := 2 + 2*r.IntN(3)
				if _, err := s.Shuttle(a, Pos{X: x, Y: 2}); err != nil {
					continue
				}
			case 1:
				if _, err := s.Gate1(a); err != nil {
					continue
				}
			case 2:
				if _, err := s.Measure(a); err != nil {
					continue
				}
			case 3:
				if _, err := s.Cool(a, c); err != nil {
					continue
				}
			}
			now := s.Clock(a)
			if now < prev {
				return false
			}
			prev = now
		}
		m := s.Makespan()
		return m >= s.Clock(a) && m >= s.Clock(c) &&
			(m == s.Clock(a) || m == s.Clock(c))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
